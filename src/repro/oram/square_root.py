"""Square-root ORAM (Goldreich–Ostrovsky) over the EM substrate.

Layout: a *store* of ``n + s`` slots (``s = ceil(sqrt(n))`` dummies) kept
sorted by a per-epoch pseudorandom tag, plus a *shelter* of ``s`` slots.
Each slot is a pair of parallel blocks: a meta block whose first record is
``(tag_or_sortkey, logical_index)`` and a payload block holding the user's
data.

Access protocol (one logical read or write):

1. scan the entire shelter for the target index;
2. probe the store by binary search on a pseudorandom tag — the target's
   tag if it was not sheltered, the next unused dummy tag otherwise;
3. append the (possibly updated) item to the next shelter slot.

Every epoch (``s`` accesses) the shelter is merged back and the store is
reshuffled under a fresh key, using the oblivious block sort — an
``O((n + s) log^2 n)``-I/O rebuild, i.e. ``O(sqrt(n) log^2 n)`` amortized
per access.

Obliviousness: the shelter scan is fixed; the binary-search probe path is
a function of a fresh pseudorandom tag that is never queried twice within
an epoch; the shelter append position is the access counter.  None of it
depends on the logical access sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.block_sort import oblivious_block_sort
from repro.em.block import NULL_KEY, RECORD_WIDTH
from repro.em.errors import EMError
from repro.em.machine import EMMachine
from repro.em.storage import EMArray
from repro.util.mathx import ceil_div, ilog2

__all__ = ["SquareRootORAM"]

_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK64 = 0xFFFFFFFFFFFFFFFF
#: Tag assigned to surplus dummies discarded during a rebuild.
_INF_TAG = int(np.iinfo(np.int64).max)


def _prf(key: int, x: int) -> int:
    """63-bit pseudorandom tag for slot ``x`` under epoch ``key``."""
    v = (key ^ (x * _GOLDEN)) & _MASK64
    v = (v + _GOLDEN) & _MASK64
    v ^= v >> 30
    v = (v * _MIX1) & _MASK64
    v ^= v >> 27
    v = (v * _MIX2) & _MASK64
    v ^= v >> 31
    return v & 0x7FFFFFFFFFFFFFFE  # < INF_TAG


@dataclass
class _Counters:
    accesses: int = 0
    rebuilds: int = 0
    epoch_position: int = 0
    dummies_used: int = 0


class SquareRootORAM:
    """Oblivious memory of ``n`` logical blocks.

    Parameters
    ----------
    machine:
        The external-memory machine hosting the physical arrays.
    n:
        Number of logical cells, each one payload block.
    rng:
        Client randomness (epoch keys).
    initial:
        Optional ``EMArray`` of at least ``n`` blocks with initial payloads
        (copied in obliviously); otherwise cells start empty.
    """

    def __init__(
        self,
        machine: EMMachine,
        n: int,
        rng: np.random.Generator,
        *,
        initial: EMArray | None = None,
        name: str = "oram",
    ) -> None:
        if n < 1:
            raise ValueError(f"ORAM needs at least one cell, got {n}")
        self.machine = machine
        self.n = n
        self.rng = rng
        self.s = max(1, ceil_div(int(np.ceil(np.sqrt(n))), 1))
        self.n_store = n + self.s
        self.name = name
        self._counters = _Counters()
        self._key = int(rng.integers(0, 2**62))
        mach = machine
        self.store_meta = mach.alloc(self.n_store, f"{name}.store.meta")
        self.store_payload = mach.alloc(self.n_store, f"{name}.store.data")
        self.shelter_meta = mach.alloc(self.s, f"{name}.shelter.meta")
        self.shelter_payload = mach.alloc(self.s, f"{name}.shelter.data")
        self._build_initial(initial)

    # -- public API ---------------------------------------------------------

    def read(self, i: int) -> np.ndarray:
        """Obliviously read logical block ``i``."""
        return self._access(i, None)

    def write(self, i: int, block: np.ndarray) -> np.ndarray:
        """Obliviously write logical block ``i``; returns the old value."""
        return self._access(i, np.asarray(block, dtype=np.int64))

    def dummy_op(self) -> None:
        """Perform an access indistinguishable from a real one.

        Fixed-schedule programs (like the Theorem-4 peeling loop) call
        this when they have no real work in a step.
        """
        self._access(None, None)

    @property
    def accesses(self) -> int:
        return self._counters.accesses

    @property
    def rebuilds(self) -> int:
        return self._counters.rebuilds

    def extract_to(self, out: EMArray) -> None:
        """Obliviously dump the logical memory, in index order, into ``out``.

        Performs a rebuild-style merge sorted by logical index and scans
        the result out; the ORAM is left unusable afterwards.
        """
        if out.num_blocks < self.n:
            raise ValueError(f"output needs {self.n} blocks, has {out.num_blocks}")
        meta, payload = self._merge_dedup(sort_by_index=True)
        mach = self.machine
        with mach.cache.hold(2):
            pos = 0
            for j in range(meta.num_blocks):
                mb = mach.read(meta, j)
                pb = mach.read(payload, j)
                idx = int(mb[0, 1])
                if idx < self.n:
                    # Real items are a sorted-by-index prefix after the merge.
                    mach.write(out, pos, pb)
                    pos += 1
            if pos != self.n:
                raise EMError(f"ORAM extract recovered {pos}/{self.n} cells")
        mach.free(meta)
        mach.free(payload)

    # -- construction ----------------------------------------------------------

    def _empty_block(self) -> np.ndarray:
        blk = np.full((self.machine.B, RECORD_WIDTH), 0, dtype=np.int64)
        blk[:, 0] = NULL_KEY
        return blk

    def _meta_block(self, key: int, idx: int) -> np.ndarray:
        blk = np.full((self.machine.B, RECORD_WIDTH), 0, dtype=np.int64)
        blk[:, 0] = NULL_KEY
        blk[0, 0] = key
        blk[0, 1] = idx
        return blk

    def _build_initial(self, initial: EMArray | None) -> None:
        mach = self.machine
        with mach.cache.hold(2):
            for slot in range(self.n_store):
                if slot < self.n:
                    idx = slot
                    payload = (
                        mach.read(initial, slot) if initial is not None else self._empty_block()
                    )
                else:
                    idx = self.n  # dummy
                    payload = self._empty_block()
                tag = _prf(self._key, slot)  # slot id doubles as tag input
                mach.write(self.store_meta, slot, self._meta_block(tag, idx))
                mach.write(self.store_payload, slot, payload)
            for t in range(self.s):
                mach.write(self.shelter_meta, t, self._meta_block(_INF_TAG, self.n))
                mach.write(self.shelter_payload, t, self._empty_block())
        # The tag of logical cell i must be PRF(key, i); above we tagged by
        # slot which coincides for real cells (slot == idx) and gives
        # dummies tags PRF(key, n), PRF(key, n+1), ...  Record the dummy
        # numbering base so probes can find them.
        self._dummy_base = self.n
        oblivious_block_sort(
            self.machine, [self.store_meta, self.store_payload]
        )

    # -- access ------------------------------------------------------------------

    def _access(self, i: int | None, new_block: np.ndarray | None) -> np.ndarray:
        """Unified oblivious access; ``i=None`` performs a dummy access."""
        if i is not None and not (0 <= i < self.n):
            raise IndexError(f"logical index {i} out of range [0, {self.n})")
        mach = self.machine
        c = self._counters
        found: np.ndarray | None = None
        with mach.cache.hold(3):
            # 1. Scan the whole shelter (fixed pattern).
            for t in range(self.s):
                mb = mach.read(self.shelter_meta, t)
                pb = mach.read(self.shelter_payload, t)
                if i is not None and int(mb[0, 1]) == i and int(mb[0, 0]) != _INF_TAG:
                    found = pb  # keep the freshest (latest) copy
            # 2. Probe the store: real tag if unseen, else next dummy tag.
            if i is None or found is not None:
                probe_tag = _prf(self._key, self._dummy_base + c.dummies_used)
                c.dummies_used += 1
                if c.dummies_used > self.s:
                    raise EMError("square-root ORAM exhausted its dummies")
            else:
                probe_tag = _prf(self._key, i)
            slot_payload = self._binary_search(probe_tag)
            if found is None and i is not None:
                found = slot_payload
            # 3. Append to the shelter.
            value = found if new_block is None else new_block
            if i is None:
                shelter_meta = self._meta_block(0, self.n)  # dummy entry
                shelter_payload = self._empty_block()
            else:
                shelter_meta = self._meta_block(0, i)
                shelter_payload = value
            mach.write(self.shelter_meta, c.epoch_position, shelter_meta)
            mach.write(self.shelter_payload, c.epoch_position, shelter_payload)
        c.accesses += 1
        c.epoch_position += 1
        if c.epoch_position == self.s:
            self._rebuild()
        if i is None:
            return self._empty_block()
        # Reads return the current value; writes return the displaced one.
        return found if found is not None else self._empty_block()

    def _binary_search(self, tag: int) -> np.ndarray:
        """Fixed-length binary search for ``tag`` in the tag-sorted store.

        Runs exactly ``ceil(log2(n_store)) + 1`` probe iterations
        regardless of where the tag is found, then one payload read.
        """
        mach = self.machine
        lo, hi = 0, self.n_store - 1
        found_slot = -1
        iters = ilog2(self.n_store) + 2
        for _ in range(iters):
            mid = (lo + hi) // 2
            mb = mach.read(self.store_meta, mid)
            mid_tag = int(mb[0, 0])
            if mid_tag == tag:
                found_slot = mid
            if mid_tag < tag:
                lo = min(mid + 1, self.n_store - 1)
            else:
                hi = max(mid - 1, 0)
        if found_slot < 0:
            raise EMError(
                "ORAM probe missed its tag — tag collision or corrupted store"
            )
        return mach.read(self.store_payload, found_slot)

    # -- rebuild ------------------------------------------------------------------

    def _merge_dedup(self, *, sort_by_index: bool) -> tuple[EMArray, EMArray]:
        """Merge store + shelter, keep freshest copy per index, mark the
        rest dummy.  Returns (meta, payload) sorted by index (real items
        first) when ``sort_by_index`` else left in post-dedup order."""
        mach = self.machine
        total = self.n_store + self.s
        fresh_span = total + 2
        meta = mach.alloc(total, f"{self.name}.merge.meta")
        payload = mach.alloc(total, f"{self.name}.merge.data")
        with mach.cache.hold(2):
            # Copy store (freshness 0) then shelter (freshness t+1), with a
            # composite sort key idx * span + (span - 1 - freshness).
            for j in range(self.n_store):
                mb = mach.read(self.store_meta, j)
                idx = int(mb[0, 1])
                key = idx * fresh_span + (fresh_span - 1)
                mach.write(meta, j, self._meta_block(key, idx))
                mach.write(payload, j, mach.read(self.store_payload, j))
            for t in range(self.s):
                mb = mach.read(self.shelter_meta, t)
                idx = int(mb[0, 1])
                key = idx * fresh_span + (fresh_span - 2 - t)
                mach.write(meta, self.n_store + t, self._meta_block(key, idx))
                mach.write(payload, self.n_store + t, mach.read(self.shelter_payload, t))
        oblivious_block_sort(mach, [meta, payload])
        # Dedup scan: the first slot of each index (freshest) survives.
        with mach.cache.hold(2):
            prev_idx = -1
            for j in range(meta.num_blocks):
                mb = mach.read(meta, j)
                idx = int(mb[0, 1])
                if idx == prev_idx or idx >= self.n:
                    mb = self._meta_block(int(mb[0, 0]), self.n)  # dummy
                else:
                    prev_idx = idx
                mach.write(meta, j, mb)
        if sort_by_index:
            with mach.cache.hold(1):
                for j in range(meta.num_blocks):
                    mb = mach.read(meta, j)
                    idx = int(mb[0, 1])
                    sort_key = idx if idx < self.n else _INF_TAG
                    mach.write(meta, j, self._meta_block(sort_key, idx))
            oblivious_block_sort(mach, [meta, payload])
        return meta, payload

    def _rebuild(self) -> None:
        """End-of-epoch reshuffle under a fresh key."""
        mach = self.machine
        meta, payload = self._merge_dedup(sort_by_index=False)
        self._key = int(self.rng.integers(0, 2**62))
        # Assign fresh tags: real items by index, the first s dummies get
        # fresh dummy tags, surplus dummies get +inf (truncated after sort).
        with mach.cache.hold(1):
            dummies = 0
            for j in range(meta.num_blocks):
                mb = mach.read(meta, j)
                idx = int(mb[0, 1])
                if idx < self.n:
                    tag = _prf(self._key, idx)
                elif dummies < self.s:
                    tag = _prf(self._key, self._dummy_base + dummies)
                    dummies += 1
                else:
                    tag = _INF_TAG
                mach.write(meta, j, self._meta_block(tag, idx))
        oblivious_block_sort(mach, [meta, payload])
        # First n_store slots become the new store; clear the shelter.
        with mach.cache.hold(2):
            for j in range(self.n_store):
                mach.write(self.store_meta, j, mach.read(meta, j))
                mach.write(self.store_payload, j, mach.read(payload, j))
            for t in range(self.s):
                mach.write(self.shelter_meta, t, self._meta_block(_INF_TAG, self.n))
                mach.write(self.shelter_payload, t, self._empty_block())
        mach.free(meta)
        mach.free(payload)
        c = self._counters
        c.rebuilds += 1
        c.epoch_position = 0
        c.dummies_used = 0
