"""Square-root ORAM (Goldreich–Ostrovsky) over the EM substrate.

Layout: a *store* of ``n + s`` slots (``s`` dummies) kept sorted by a
per-epoch pseudorandom tag, plus a *shelter* of ``s`` slots.  Each slot is
a pair of parallel blocks: a meta block whose first record is
``(tag_or_sortkey, logical_index)`` and a payload block holding the user's
data.

Access protocol (one logical read, write, or read-modify-write):

1. scan the entire shelter for the target index;
2. probe the store by binary search on a pseudorandom tag — the target's
   tag if it was not sheltered, the next unused dummy tag otherwise;
3. append the (possibly updated) item to the next shelter slot.

Every epoch (``s`` accesses) the shelter is merged back and the store is
reshuffled under a fresh key, using the oblivious block sort — an
``O((n + s) log^2 n)``-I/O rebuild.  With the default shelter of
``s = ceil(sqrt(n))`` slots that is ``O(sqrt(n) log^2 n)`` amortized per
access; ``shelter_factor`` scales ``s`` by an integer factor, trading a
longer (still fixed) shelter scan for proportionally rarer rebuilds —
the classic epoch-length optimization, worth a ``log n`` factor when the
rebuild dominates (as it does in the Theorem-4 peel; see
:func:`repro.core.compaction.tight_compact_sparse`).

Obliviousness: the shelter scan is fixed; the binary-search probe path is
a function of a fresh pseudorandom tag that is never queried twice within
an epoch; the shelter append position is the access counter.  None of it
depends on the logical access sequence.  Note the guarantee is
*distributional* (the paper's §1 definition): at a fixed seed the probe
path tracks the searched tag's rank, so transcripts are bit-identical
across data *values* and read/write/update op kinds, while different
logical index sequences produce different — identically distributed —
probe positions (``tests/obliviousness.py`` pins both halves).

The hot loops — construction, the shelter scan, the merge/dedup, the
rebuild and the extraction — run through the machine's batched engine
(:meth:`repro.em.machine.EMMachine.io_rounds`) and emit *exactly* the
event sequence of the equivalent scalar loops, so I/O counts and traces
are unchanged from the scalar formulation (pinned by golden fingerprints
in ``tests/test_oram.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.block_sort import oblivious_block_sort
from repro.em.batch import empty_blocks, hold_scan, scan_chunks
from repro.em.block import NULL_KEY, RECORD_WIDTH
from repro.em.errors import EMError
from repro.em.machine import EMMachine
from repro.em.storage import EMArray
from repro.util.mathx import ceil_div, ilog2

__all__ = ["SquareRootORAM"]

_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK64 = 0xFFFFFFFFFFFFFFFF
#: Tag assigned to surplus dummies discarded during a rebuild.
_INF_TAG = int(np.iinfo(np.int64).max)


def _prf(key: int, x: int) -> int:
    """63-bit pseudorandom tag for slot ``x`` under epoch ``key``."""
    v = (key ^ (x * _GOLDEN)) & _MASK64
    v = (v + _GOLDEN) & _MASK64
    v ^= v >> 30
    v = (v * _MIX1) & _MASK64
    v ^= v >> 27
    v = (v * _MIX2) & _MASK64
    v ^= v >> 31
    return v & 0x7FFFFFFFFFFFFFFE  # < INF_TAG


def _prf_many(key: int, xs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_prf` (bit-exact: uint64 wraparound == mask)."""
    v = np.uint64(key) ^ (xs.astype(np.uint64) * np.uint64(_GOLDEN))
    v = v + np.uint64(_GOLDEN)
    v ^= v >> np.uint64(30)
    v *= np.uint64(_MIX1)
    v ^= v >> np.uint64(27)
    v *= np.uint64(_MIX2)
    v ^= v >> np.uint64(31)
    return (v & np.uint64(0x7FFFFFFFFFFFFFFE)).astype(np.int64)


@dataclass
class _Counters:
    accesses: int = 0
    rebuilds: int = 0
    epoch_position: int = 0
    dummies_used: int = 0


class SquareRootORAM:
    """Oblivious memory of ``n`` logical blocks.

    Parameters
    ----------
    machine:
        The external-memory machine hosting the physical arrays.
    n:
        Number of logical cells, each one payload block.
    rng:
        Client randomness (epoch keys).
    initial:
        Optional ``EMArray`` of at least ``n`` blocks with initial payloads
        (copied in obliviously); otherwise cells start empty.
    shelter_factor:
        Integer multiplier on the shelter size ``s = ceil(sqrt(n))``
        (default 1, the textbook scheme).  Larger shelters lengthen the
        fixed per-access scan but amortize the ``O((n+s) log^2 n)``
        rebuild over proportionally more accesses; rebuild-dominated
        workloads (the Theorem-4 peel) pass ``log2(n) + 2``.
    """

    def __init__(
        self,
        machine: EMMachine,
        n: int,
        rng: np.random.Generator,
        *,
        initial: EMArray | None = None,
        name: str = "oram",
        shelter_factor: int = 1,
    ) -> None:
        if n < 1:
            raise ValueError(f"ORAM needs at least one cell, got {n}")
        if shelter_factor < 1:
            raise ValueError(f"shelter_factor must be >= 1, got {shelter_factor}")
        self.machine = machine
        self.n = n
        self.rng = rng
        self.s = max(1, ceil_div(int(np.ceil(np.sqrt(n))), 1)) * int(shelter_factor)
        self.n_store = n + self.s
        self.name = name
        self._counters = _Counters()
        self._key = int(rng.integers(0, 2**62))
        mach = machine
        self.store_meta = mach.alloc(self.n_store, f"{name}.store.meta")
        self.store_payload = mach.alloc(self.n_store, f"{name}.store.data")
        self.shelter_meta = mach.alloc(self.s, f"{name}.shelter.meta")
        self.shelter_payload = mach.alloc(self.s, f"{name}.shelter.data")
        self._build_initial(initial)

    # -- public API ---------------------------------------------------------

    def read(self, i: int) -> np.ndarray:
        """Obliviously read logical block ``i``."""
        return self._access(i, None)

    def write(self, i: int, block: np.ndarray) -> np.ndarray:
        """Obliviously write logical block ``i``; returns the old value."""
        return self._access(i, np.asarray(block, dtype=np.int64))

    def update(self, i: int, fn: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Read-modify-write in ONE access: store ``fn(current)`` at ``i``
        and return the old value.

        The transcript is identical to :meth:`read` / :meth:`write` (the
        access protocol never depends on whether the shelter append
        carries the old, a fresh, or a derived value), so fixed-schedule
        programs like the Theorem-4 peel halve their access counts by
        folding each read+write pair into one ``update``.
        """
        return self._access(i, None, update_fn=fn)

    def dummy_op(self) -> None:
        """Perform an access indistinguishable from a real one.

        Fixed-schedule programs (like the Theorem-4 peeling loop) call
        this when they have no real work in a step.
        """
        self._access(None, None)

    @property
    def accesses(self) -> int:
        return self._counters.accesses

    @property
    def rebuilds(self) -> int:
        return self._counters.rebuilds

    def free(self) -> None:
        """Release the store and shelter arrays (adversary-visible, like
        any free); the ORAM is unusable afterwards.  Embedding algorithms
        (the Theorem-4 peel, the ``oram_read_batch`` pipeline step) call
        this so sessions do not accumulate dead simulation arrays."""
        for arr in (
            self.store_meta,
            self.store_payload,
            self.shelter_meta,
            self.shelter_payload,
        ):
            self.machine.free(arr)

    def extract_to(self, out: EMArray) -> None:
        """Obliviously dump the logical memory, in index order, into ``out``.

        Performs a rebuild-style merge sorted by logical index and scans
        the result out; the ORAM is left unusable afterwards.
        """
        if out.num_blocks < self.n:
            raise ValueError(f"output needs {self.n} blocks, has {out.num_blocks}")
        meta, payload = self._merge_dedup(sort_by_index=True)
        mach = self.machine
        # Real items are a sorted-by-index prefix after the merge, so the
        # scalar loop's conditional write fires exactly on the first n
        # rounds: scan the prefix with a fused R/R/W stream, the tail with
        # R/R — the same event sequence, validated after the fact.
        recovered = 0
        for lo, hi in scan_chunks(mach, self.n, streams=3):
            with hold_scan(mach, 3, hi - lo):
                metas, _, _ = mach.io_rounds([
                    ("r", meta, (lo, hi)),
                    ("r", payload, (lo, hi)),
                    ("w", out, (lo, hi), lambda reads: reads[1]),
                ])
                recovered += int(np.count_nonzero(metas[:, 0, 1] < self.n))
        for lo, hi in scan_chunks(mach, meta.num_blocks - self.n, streams=2):
            with hold_scan(mach, 2, hi - lo):
                metas, _ = mach.io_rounds([
                    ("r", meta, (self.n + lo, self.n + hi)),
                    ("r", payload, (self.n + lo, self.n + hi)),
                ])
                recovered += int(np.count_nonzero(metas[:, 0, 1] < self.n))
        if recovered != self.n:  # oblint: public(recovered) -- extract integrity check: fires only on store corruption
            raise EMError(f"ORAM extract recovered {recovered}/{self.n} cells")
        mach.free(meta)
        mach.free(payload)

    # -- construction ----------------------------------------------------------

    def _empty_block(self) -> np.ndarray:
        blk = np.full((self.machine.B, RECORD_WIDTH), 0, dtype=np.int64)
        blk[:, 0] = NULL_KEY
        return blk

    def _meta_block(self, key: int, idx: int) -> np.ndarray:
        blk = np.full((self.machine.B, RECORD_WIDTH), 0, dtype=np.int64)
        blk[:, 0] = NULL_KEY
        blk[0, 0] = key
        blk[0, 1] = idx
        return blk

    def _meta_blocks(self, keys: np.ndarray, idxs: np.ndarray) -> np.ndarray:
        """Stack of meta blocks: byte-identical to ``_meta_block`` rows."""
        blks = empty_blocks(len(keys), self.machine.B)
        blks[:, 0, 0] = keys
        blks[:, 0, 1] = idxs
        return blks

    def _build_initial(self, initial: EMArray | None) -> None:
        mach = self.machine
        # Store prefix [0, n): real cells — R initial, W meta, W payload
        # per slot when seeded, W meta, W payload otherwise.
        for lo, hi in scan_chunks(mach, self.n, streams=3):
            tags = _prf_many(self._key, np.arange(lo, hi, dtype=np.int64))
            metas = self._meta_blocks(tags, np.arange(lo, hi, dtype=np.int64))
            with hold_scan(mach, 3, hi - lo):
                if initial is not None:
                    mach.io_rounds([
                        ("r", initial, (lo, hi)),
                        ("w", self.store_meta, (lo, hi), metas),
                        ("w", self.store_payload, (lo, hi), lambda reads: reads[0]),
                    ])
                else:
                    mach.io_rounds([
                        ("w", self.store_meta, (lo, hi), metas),
                        ("w", self.store_payload, (lo, hi), empty_blocks(hi - lo, mach.B)),
                    ])
        # Store suffix [n, n_store): dummies, tagged PRF(key, n), PRF(key, n+1), ...
        for lo, hi in scan_chunks(mach, self.s, streams=2):
            tags = _prf_many(
                self._key, np.arange(self.n + lo, self.n + hi, dtype=np.int64)
            )
            metas = self._meta_blocks(
                tags, np.full(hi - lo, self.n, dtype=np.int64)
            )
            with hold_scan(mach, 2, hi - lo):
                mach.io_rounds([
                    ("w", self.store_meta, (self.n + lo, self.n + hi), metas),
                    ("w", self.store_payload, (self.n + lo, self.n + hi),
                     empty_blocks(hi - lo, mach.B)),
                ])
        for lo, hi in scan_chunks(mach, self.s, streams=2):
            infs = self._meta_blocks(
                np.full(hi - lo, _INF_TAG, dtype=np.int64),
                np.full(hi - lo, self.n, dtype=np.int64),
            )
            with hold_scan(mach, 2, hi - lo):
                mach.io_rounds([
                    ("w", self.shelter_meta, (lo, hi), infs),
                    ("w", self.shelter_payload, (lo, hi), empty_blocks(hi - lo, mach.B)),
                ])
        # The tag of logical cell i is PRF(key, i) (slot == idx for real
        # cells); dummies continue the numbering at n, n+1, ...  Record the
        # dummy numbering base so probes can find them.
        self._dummy_base = self.n
        oblivious_block_sort(
            self.machine, [self.store_meta, self.store_payload]
        )

    # -- access ------------------------------------------------------------------

    def _access(
        self,
        i: int | None,
        new_block: np.ndarray | None,
        update_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Unified oblivious access; ``i=None`` performs a dummy access."""
        if i is not None and not (0 <= i < self.n):
            raise IndexError(f"logical index {i} out of range [0, {self.n})")
        mach = self.machine
        c = self._counters
        found: np.ndarray | None = None
        # 1. Scan the whole shelter (fixed pattern): R meta t, R payload t
        #    per slot, batched chunk-wise — the scalar loop's event order.
        for lo, hi in scan_chunks(mach, self.s, streams=2):
            with hold_scan(mach, 2, hi - lo):
                metas, pays = mach.io_rounds([
                    ("r", self.shelter_meta, (lo, hi)),
                    ("r", self.shelter_payload, (lo, hi)),
                ])
                if i is not None:
                    hits = np.flatnonzero(
                        (metas[:, 0, 1] == i) & (metas[:, 0, 0] != _INF_TAG)
                    )
                    if len(hits):
                        found = pays[hits[-1]].copy()  # freshest (latest) copy
        with mach.cache.hold(3):
            # 2. Probe the store: real tag if unseen, else next dummy tag.
            if i is None or found is not None:
                probe_tag = _prf(self._key, self._dummy_base + c.dummies_used)
                c.dummies_used += 1
                if c.dummies_used > self.s:
                    raise EMError("square-root ORAM exhausted its dummies")
            else:
                probe_tag = _prf(self._key, i)
            slot_payload = self._binary_search(probe_tag)
            if found is None and i is not None:
                found = slot_payload
            # 3. Append to the shelter.
            if update_fn is not None and i is not None:
                value = update_fn(found if found is not None else self._empty_block())
            elif new_block is None:
                value = found
            else:
                value = new_block
            if i is None:
                shelter_meta = self._meta_block(0, self.n)  # dummy entry
                shelter_payload = self._empty_block()
            else:
                shelter_meta = self._meta_block(0, i)
                shelter_payload = value
            mach.write(self.shelter_meta, c.epoch_position, shelter_meta)
            mach.write(self.shelter_payload, c.epoch_position, shelter_payload)
        c.accesses += 1
        c.epoch_position += 1
        if c.epoch_position == self.s:
            self._rebuild()
        if i is None:
            return self._empty_block()
        # Reads and updates return the pre-access value; writes return the
        # displaced one.
        return found if found is not None else self._empty_block()

    def _binary_search(self, tag: int) -> np.ndarray:
        """Fixed-length binary search for ``tag`` in the tag-sorted store.

        Runs exactly ``ceil(log2(n_store)) + 1`` probe iterations
        regardless of where the tag is found, then one payload read.
        Each iteration's position depends on the previous comparison, so
        the loop stays scalar — it is ``O(log n)`` I/Os, not a hot loop.
        """
        mach = self.machine
        lo, hi = 0, self.n_store - 1
        found_slot = -1
        iters = ilog2(self.n_store) + 2
        for _ in range(iters):
            mid = (lo + hi) // 2  # oblint: public(mid) -- binary search over sorted PRF tags: the probe path depends only on pseudorandom tag order
            mb = mach.read(self.store_meta, mid)
            mid_tag = int(mb[0, 0])
            if mid_tag == tag:
                found_slot = mid
            if mid_tag < tag:
                lo = min(mid + 1, self.n_store - 1)
            else:
                hi = max(mid - 1, 0)
        if found_slot < 0:  # oblint: public(found_slot) -- probe-miss integrity check: fires only on PRF tag collision or corruption
            raise EMError(
                "ORAM probe missed its tag — tag collision or corrupted store"
            )
        return mach.read(self.store_payload, found_slot)  # oblint: public(found_slot) -- slot position in the tag-sorted store is pseudorandom (PRF output)

    # -- rebuild ------------------------------------------------------------------

    def _merge_dedup(self, *, sort_by_index: bool) -> tuple[EMArray, EMArray]:
        """Merge store + shelter, keep freshest copy per index, mark the
        rest dummy.  Returns (meta, payload) sorted by index (real items
        first) when ``sort_by_index`` else left in post-dedup order."""
        mach = self.machine
        total = self.n_store + self.s
        fresh_span = total + 2
        meta = mach.alloc(total, f"{self.name}.merge.meta")
        payload = mach.alloc(total, f"{self.name}.merge.data")
        # Copy store (freshness 0) then shelter (freshness t+1), with a
        # composite sort key idx * span + (span - 1 - freshness).  Event
        # order per slot: R src meta, W meta, R src payload, W payload.
        for lo, hi in scan_chunks(mach, self.n_store, streams=4):
            with hold_scan(mach, 4, hi - lo):
                def rekeyed(reads, span=fresh_span):
                    idx = reads[0][:, 0, 1]
                    return self._meta_blocks(idx * span + (span - 1), idx)

                mach.io_rounds([
                    ("r", self.store_meta, (lo, hi)),
                    ("w", meta, (lo, hi), rekeyed),
                    ("r", self.store_payload, (lo, hi)),
                    ("w", payload, (lo, hi), lambda reads: reads[2]),
                ])
        for lo, hi in scan_chunks(mach, self.s, streams=4):
            with hold_scan(mach, 4, hi - lo):
                def rekeyed_shelter(reads, span=fresh_span, t0=lo):
                    idx = reads[0][:, 0, 1]
                    t = np.arange(t0, t0 + len(idx), dtype=np.int64)
                    return self._meta_blocks(idx * span + (span - 2 - t), idx)

                mach.io_rounds([
                    ("r", self.shelter_meta, (lo, hi)),
                    ("w", meta, (self.n_store + lo, self.n_store + hi), rekeyed_shelter),
                    ("r", self.shelter_payload, (lo, hi)),
                    ("w", payload, (self.n_store + lo, self.n_store + hi),
                     lambda reads: reads[2]),
                ])
        oblivious_block_sort(mach, [meta, payload])
        # Dedup scan: the first slot of each index (freshest) survives.
        # Sorted order makes "is a duplicate" a comparison with the
        # previous slot's index, carried across chunks.
        prev_idx = -1
        for lo, hi in scan_chunks(mach, meta.num_blocks, streams=2):
            with hold_scan(mach, 2, hi - lo):
                def deduped(reads, prev=prev_idx):
                    mb = reads[0]
                    idx = mb[:, 0, 1]
                    shifted = np.concatenate(([prev], idx[:-1]))
                    keep = (idx != shifted) & (idx < self.n)
                    out = mb.copy()
                    drop = ~keep
                    dummies = self._meta_blocks(
                        mb[drop, 0, 0], np.full(int(drop.sum()), self.n, dtype=np.int64)
                    )
                    out[drop] = dummies
                    return out

                metas, _ = mach.io_rounds([
                    ("r", meta, (lo, hi)),
                    ("w", meta, (lo, hi), deduped),
                ])
                prev_idx = int(metas[-1, 0, 1])
        if sort_by_index:
            for lo, hi in scan_chunks(mach, meta.num_blocks, streams=2):
                with hold_scan(mach, 2, hi - lo):
                    def indexed(reads):
                        idx = reads[0][:, 0, 1]
                        keys = np.where(idx < self.n, idx, _INF_TAG)
                        return self._meta_blocks(keys, idx)

                    mach.io_rounds([
                        ("r", meta, (lo, hi)),
                        ("w", meta, (lo, hi), indexed),
                    ])
            oblivious_block_sort(mach, [meta, payload])
        return meta, payload

    def _rebuild(self) -> None:
        """End-of-epoch reshuffle under a fresh key."""
        mach = self.machine
        meta, payload = self._merge_dedup(sort_by_index=False)
        self._key = int(self.rng.integers(0, 2**62))
        # Assign fresh tags: real items by index, the first s dummies get
        # fresh dummy tags, surplus dummies get +inf (truncated after sort).
        dummies_before = 0
        for lo, hi in scan_chunks(mach, meta.num_blocks, streams=2):
            with hold_scan(mach, 2, hi - lo):
                def retagged(reads, base=dummies_before):
                    mb = reads[0]
                    idx = mb[:, 0, 1]
                    is_dummy = idx >= self.n
                    rank = base + np.cumsum(is_dummy) - 1  # rank of each dummy
                    tags = _prf_many(self._key, idx)
                    dummy_tags = np.where(
                        rank < self.s,
                        _prf_many(self._key, self._dummy_base + np.maximum(rank, 0)),
                        _INF_TAG,
                    )
                    return self._meta_blocks(
                        np.where(is_dummy, dummy_tags, tags), idx
                    )

                metas, _ = mach.io_rounds([
                    ("r", meta, (lo, hi)),
                    ("w", meta, (lo, hi), retagged),
                ])
                dummies_before += int(np.count_nonzero(metas[:, 0, 1] >= self.n))
        oblivious_block_sort(mach, [meta, payload])
        # First n_store slots become the new store; clear the shelter.
        for lo, hi in scan_chunks(mach, self.n_store, streams=4):
            with hold_scan(mach, 4, hi - lo):
                mach.io_rounds([
                    ("r", meta, (lo, hi)),
                    ("w", self.store_meta, (lo, hi), lambda reads: reads[0]),
                    ("r", payload, (lo, hi)),
                    ("w", self.store_payload, (lo, hi), lambda reads: reads[2]),
                ])
        for lo, hi in scan_chunks(mach, self.s, streams=2):
            with hold_scan(mach, 2, hi - lo):
                infs = self._meta_blocks(
                    np.full(hi - lo, _INF_TAG, dtype=np.int64),
                    np.full(hi - lo, self.n, dtype=np.int64),
                )
                mach.io_rounds([
                    ("w", self.shelter_meta, (lo, hi), infs),
                    ("w", self.shelter_payload, (lo, hi), empty_blocks(hi - lo, mach.B)),
                ])
        mach.free(meta)
        mach.free(payload)
        c = self._counters
        c.rebuilds += 1
        c.epoch_position = 0
        c.dummies_used = 0
