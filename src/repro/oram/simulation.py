"""Oblivious-RAM simulation accounting (experiment E9).

The paper's closing observation (§1, §5) is that because data-oblivious
sorting is the inner loop of oblivious-RAM simulations, a faster oblivious
sort improves the simulation's amortized overhead by a logarithmic factor.
This module measures that: it runs an access workload against an ORAM
backend (square-root by default; any ``oram_factory`` — e.g. the
hierarchical scheme — can be substituted) and reports the amortized I/O
overhead per access, splitting out the I/Os spent inside rebuilds
(i.e. inside the oblivious sort) so the sort's contribution is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.em.machine import EMMachine
from repro.oram.square_root import SquareRootORAM
from repro.util.rng import make_rng

__all__ = ["ORAMStats", "measure_oram_overhead"]


@dataclass(frozen=True)
class ORAMStats:
    """Amortized-cost report for an ORAM workload.

    ``accesses`` counts every operation the workload issued — dummy ops
    included, since a fixed-schedule program pays for them like any
    other access.
    """

    n: int
    accesses: int
    total_ios: int
    rebuild_ios: int
    rebuilds: int
    backend: str = "square_root"

    @property
    def amortized_ios_per_access(self) -> float:
        return self.total_ios / max(1, self.accesses)

    @property
    def rebuild_fraction(self) -> float:
        """Fraction of all I/Os spent in rebuilds — the oblivious-sort
        inner loop whose cost the paper's Theorem 21 reduces."""
        return self.rebuild_ios / max(1, self.total_ios)


def measure_oram_overhead(
    n: int,
    num_accesses: int,
    *,
    M: int = 64,
    B: int = 4,
    seed: int = 0,
    workload: str = "read",
    oram_factory: Callable[[EMMachine, int, np.random.Generator], object]
    | str
    | None = None,
) -> ORAMStats:
    """Run a random access workload and report amortized cost.

    ``workload="read"`` issues uniform random reads (the historical E9
    shape); ``"mixed"`` draws uniformly from read / write / update /
    dummy ops — writes and updates exercise the shelter-append and
    rebuild paths with fresh payloads, and dummy ops count toward the
    ``accesses`` denominator like any other operation.

    ``oram_factory`` selects the backend: a backend name accepted by
    :func:`repro.oram.make_oram`, or a callable
    ``(machine, n, rng) -> oram`` (default: square-root).

    Rebuild attribution: an access that triggers a rebuild pays the
    normal access cost *plus* the rebuild; only the excess over the
    running mean non-rebuild access cost is booked to ``rebuild_ios``
    (before any non-rebuild access is seen the whole cost is booked —
    there is nothing to subtract yet).
    """
    if workload not in ("read", "mixed"):
        raise ValueError(f"unknown workload {workload!r}; use 'read' or 'mixed'")
    machine = EMMachine(M=M, B=B, trace=False)
    rng = make_rng(seed)
    if oram_factory is None:
        backend = "square_root"
        oram = SquareRootORAM(machine, n, rng)
    elif isinstance(oram_factory, str):
        from repro.oram import make_oram

        backend = oram_factory
        oram = make_oram(oram_factory, machine, n, rng)
    else:
        backend = getattr(oram_factory, "__name__", "custom")
        oram = oram_factory(machine, n, rng)
    baseline = machine.total_ios  # setup cost excluded from the amortized figure
    rebuild_ios = 0.0
    plain_ios = 0  # total cost of non-rebuild accesses ...
    plain_count = 0  # ... and how many there were (running mean)
    indices = rng.integers(0, n, size=num_accesses)
    kinds = (
        rng.integers(0, 4, size=num_accesses)
        if workload == "mixed"
        else np.zeros(num_accesses, dtype=np.int64)
    )
    for i, kind in zip(indices, kinds):
        before_rebuilds = oram.rebuilds
        before_ios = machine.total_ios
        if kind == 0:
            oram.read(int(i))
        elif kind == 1:
            blk = np.zeros((B, 2), dtype=np.int64)
            blk[0, 0] = int(rng.integers(0, 2**31))
            oram.write(int(i), blk)
        elif kind == 2:
            oram.update(int(i), lambda b: b + 1)
        else:
            oram.dummy_op()
        cost = machine.total_ios - before_ios
        if oram.rebuilds > before_rebuilds:
            # The access triggered a rebuild; attribute the excess over a
            # typical (running mean) non-rebuild access to the rebuild.
            mean = plain_ios / plain_count if plain_count else 0.0
            rebuild_ios += max(0.0, cost - mean)
        else:
            plain_ios += cost
            plain_count += 1
    return ORAMStats(
        n=n,
        accesses=oram.accesses,
        total_ios=machine.total_ios - baseline,
        rebuild_ios=int(round(rebuild_ios)),
        rebuilds=oram.rebuilds,
        backend=backend,
    )
