"""Oblivious-RAM simulation accounting (experiment E9).

The paper's closing observation (§1, §5) is that because data-oblivious
sorting is the inner loop of oblivious-RAM simulations, a faster oblivious
sort improves the simulation's amortized overhead by a logarithmic factor.
This module measures that: it runs an access workload against a
:class:`repro.oram.square_root.SquareRootORAM` and reports the amortized
I/O overhead per access, splitting out the I/Os spent inside rebuilds
(i.e. inside the oblivious sort) so the sort's contribution is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.em.machine import EMMachine
from repro.oram.square_root import SquareRootORAM
from repro.util.rng import make_rng

__all__ = ["ORAMStats", "measure_oram_overhead"]


@dataclass(frozen=True)
class ORAMStats:
    """Amortized-cost report for an ORAM workload."""

    n: int
    accesses: int
    total_ios: int
    rebuild_ios: int
    rebuilds: int

    @property
    def amortized_ios_per_access(self) -> float:
        return self.total_ios / max(1, self.accesses)

    @property
    def rebuild_fraction(self) -> float:
        """Fraction of all I/Os spent in rebuilds — the oblivious-sort
        inner loop whose cost the paper's Theorem 21 reduces."""
        return self.rebuild_ios / max(1, self.total_ios)


def measure_oram_overhead(
    n: int,
    num_accesses: int,
    *,
    M: int = 64,
    B: int = 4,
    seed: int = 0,
) -> ORAMStats:
    """Run a uniform random access workload and report amortized cost."""
    machine = EMMachine(M=M, B=B, trace=False)
    rng = make_rng(seed)
    oram = SquareRootORAM(machine, n, rng)
    baseline = machine.total_ios  # setup cost excluded from the amortized figure
    rebuild_ios = 0
    workload = rng.integers(0, n, size=num_accesses)
    for i in workload:
        before_rebuilds = oram.rebuilds
        before_ios = machine.total_ios
        oram.read(int(i))
        if oram.rebuilds > before_rebuilds:
            # The access triggered a rebuild; attribute the excess over a
            # typical non-rebuild access to the rebuild.
            rebuild_ios += machine.total_ios - before_ios
    return ORAMStats(
        n=n,
        accesses=num_accesses,
        total_ios=machine.total_ios - baseline,
        rebuild_ios=rebuild_ios,
        rebuilds=oram.rebuilds,
    )
