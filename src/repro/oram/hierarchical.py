"""Hierarchical (Goldreich–Ostrovsky log²-style) ORAM over the EM substrate.

Layout: a *buffer* of ``s0`` slots (the top of the hierarchy, scanned in
full on every access) plus ``L + 1`` *levels* of doubling capacity.
Level ``k`` is a pair of parallel arrays of ``2 * s0 * 2^k`` slots —
``s0 * 2^k`` for real items and as many for dummies — kept sorted by a
per-level, per-epoch pseudorandom tag (the sorted-tag analogue of the
classic hashed level).  Each slot is a meta block whose first record is
``(tag_or_sortkey, logical_index)`` plus a payload block.

Access protocol (one logical read, write, or read-modify-write):

1. scan the entire buffer for the target index (freshest copy wins);
2. probe every *occupied* level, youngest to oldest, by fixed-length
   binary search on a pseudorandom tag — the target's tag under that
   level's key while the item is still unfound, the level's next unused
   dummy tag afterwards;
3. append the (possibly updated) item to the next buffer slot.

Every ``s0`` accesses the buffer spills: it is merged with levels
``0 .. j-1`` into the smallest empty level ``j`` (binary-counter
cadence), or with *every* level into level ``L`` when none is empty.  A
merge is two oblivious block sorts plus fixed scans — copy sources under
a composite ``index * span + staleness`` key, sort, dedup (freshest copy
per index survives), re-tag under a fresh level key via ``_prf_many``
(the first ``s0 * 2^j`` dummies get probe-able ranked tags, the surplus
``+inf``), sort, truncate to the level's capacity.  Level ``j`` then
lives exactly ``s0 * 2^j`` accesses before the counter consumes it, so
its dummy budget — one per access — never runs dry.

Amortized cost: each access pays the ``2 s0`` buffer scan plus
``O(log n)`` probes of ``O(log n)`` I/Os each, and every level ``k``
charges its ``O(s0 2^k log^2 n)`` rebuild to the ``s0 2^k`` accesses of
its lifetime — ``O(log^2 n)``-ish per access per level, summed over
``O(log n)`` levels; contrast the square-root scheme's
``O(sqrt(n) log^2 n)``.  Experiment E9 (``oram/simulation.py``)
measures where the crossover lands on this machine.

Obliviousness: the buffer scan is fixed; which levels are occupied is a
public function of the access counter alone; each probe's descent is a
function of a fresh pseudorandom tag that is never searched twice within
a level's lifetime (once an item is touched it sits in the buffer, then
in a *younger* level, until the level is consumed — so its real tag is
stale by the time the level could be probed for it again); the buffer
append position is the access counter.  As with
:class:`~repro.oram.square_root.SquareRootORAM` the guarantee is
*distributional*: transcripts are bit-identical across data values and
read/write/update op kinds at a fixed index schedule, while different
index sequences give identically distributed probe positions
(``tests/obliviousness.py`` pins both halves for this backend too).

All hot loops — construction, the buffer scan, merges, extraction — run
through the machine's batched engine
(:meth:`repro.em.machine.EMMachine.io_rounds`) and emit exactly the
event sequence of the equivalent scalar loops.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.block_sort import oblivious_block_sort
from repro.em.batch import empty_blocks, hold_scan, scan_chunks
from repro.em.errors import EMError
from repro.em.machine import EMMachine
from repro.em.storage import EMArray
from repro.oram.square_root import _INF_TAG, _Counters, _prf, _prf_many
from repro.util.mathx import ilog2

__all__ = ["HierarchicalORAM"]


class HierarchicalORAM:
    """Oblivious memory of ``n`` logical blocks with polylog amortized cost.

    Drop-in sibling of :class:`~repro.oram.square_root.SquareRootORAM`:
    same ``read``/``write``/``update``/``dummy_op``/``extract_to``/
    ``free`` interface and the same meta/payload slot encoding.

    Parameters
    ----------
    machine:
        The external-memory machine hosting the physical arrays.
    n:
        Number of logical cells, each one payload block.
    rng:
        Client randomness (per-level epoch keys).
    initial:
        Optional ``EMArray`` of at least ``n`` blocks with initial payloads
        (copied in obliviously); otherwise cells start empty.
    buffer_slots:
        Size of the top buffer (default ``max(4, log2(n) + 1)``, the
        classic ``Theta(log n)`` top level).  Larger buffers lengthen the
        fixed per-access scan but halve the merge cadence.
    """

    def __init__(
        self,
        machine: EMMachine,
        n: int,
        rng: np.random.Generator,
        *,
        initial: EMArray | None = None,
        name: str = "horam",
        buffer_slots: int | None = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"ORAM needs at least one cell, got {n}")
        if buffer_slots is not None and buffer_slots < 1:
            raise ValueError(f"buffer_slots must be >= 1, got {buffer_slots}")
        self.machine = machine
        self.n = n
        self.rng = rng
        self.name = name
        self.s0 = int(buffer_slots) if buffer_slots else max(4, ilog2(max(2, n)) + 1)
        # Smallest L with s0 * 2^L >= n: level L alone can hold everything.
        L = 0
        while self.s0 * (1 << L) < n:
            L += 1
        self.L = L
        #: Real-slot capacity of level k — also its dummy budget and lifetime.
        self.reals = [self.s0 * (1 << k) for k in range(L + 1)]
        self.caps = [2 * r for r in self.reals]
        self._counters = _Counters()
        self._keys = [int(rng.integers(0, 2**62)) for _ in range(L + 1)]
        self._dummies_used = [0] * (L + 1)
        self._occupied = [False] * L + [True]
        mach = machine
        self.buf_meta = mach.alloc(self.s0, f"{name}.buf.meta")
        self.buf_payload = mach.alloc(self.s0, f"{name}.buf.data")
        self.level_meta = [
            mach.alloc(self.caps[k], f"{name}.L{k}.meta") for k in range(L + 1)
        ]
        self.level_payload = [
            mach.alloc(self.caps[k], f"{name}.L{k}.data") for k in range(L + 1)
        ]
        self._build_initial(initial)

    # -- public API ---------------------------------------------------------

    def read(self, i: int) -> np.ndarray:
        """Obliviously read logical block ``i``."""
        return self._access(i, None)

    def write(self, i: int, block: np.ndarray) -> np.ndarray:
        """Obliviously write logical block ``i``; returns the old value."""
        return self._access(i, np.asarray(block, dtype=np.int64))

    def update(self, i: int, fn: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Read-modify-write in ONE access: store ``fn(current)`` at ``i``
        and return the old value (transcript identical to read/write)."""
        return self._access(i, None, update_fn=fn)

    def dummy_op(self) -> None:
        """Perform an access indistinguishable from a real one."""
        self._access(None, None)

    @property
    def accesses(self) -> int:
        return self._counters.accesses

    @property
    def rebuilds(self) -> int:
        """Number of level merges performed (any size)."""
        return self._counters.rebuilds

    def free(self) -> None:
        """Release every physical array; the ORAM is unusable afterwards."""
        for arr in (self.buf_meta, self.buf_payload):
            self.machine.free(arr)
        for arr in self.level_meta + self.level_payload:
            self.machine.free(arr)

    def extract_to(self, out: EMArray) -> None:
        """Obliviously dump the logical memory, in index order, into ``out``."""
        if out.num_blocks < self.n:
            raise ValueError(f"output needs {self.n} blocks, has {out.num_blocks}")
        meta, payload = self._merge_sources(
            [k for k in range(self.L + 1) if self._occupied[k]],
            min_total=self.n,
            sort_by_index=True,
        )
        mach = self.machine
        recovered = 0
        for lo, hi in scan_chunks(mach, self.n, streams=3):
            with hold_scan(mach, 3, hi - lo):
                metas, _, _ = mach.io_rounds([
                    ("r", meta, (lo, hi)),
                    ("r", payload, (lo, hi)),
                    ("w", out, (lo, hi), lambda reads: reads[1]),
                ])
                recovered += int(np.count_nonzero(metas[:, 0, 1] < self.n))
        for lo, hi in scan_chunks(mach, meta.num_blocks - self.n, streams=2):
            with hold_scan(mach, 2, hi - lo):
                metas, _ = mach.io_rounds([
                    ("r", meta, (self.n + lo, self.n + hi)),
                    ("r", payload, (self.n + lo, self.n + hi)),
                ])
                recovered += int(np.count_nonzero(metas[:, 0, 1] < self.n))
        if recovered != self.n:  # oblint: public(recovered) -- extract integrity check: fires only on store corruption
            raise EMError(f"ORAM extract recovered {recovered}/{self.n} cells")
        mach.free(meta)
        mach.free(payload)

    # -- construction -------------------------------------------------------

    def _empty_block(self) -> np.ndarray:
        return empty_blocks(1, self.machine.B)[0]

    def _meta_block(self, key: int, idx: int) -> np.ndarray:
        blk = empty_blocks(1, self.machine.B)[0]
        blk[0, 0] = key
        blk[0, 1] = idx
        return blk

    def _meta_blocks(self, keys: np.ndarray, idxs: np.ndarray) -> np.ndarray:
        blks = empty_blocks(len(keys), self.machine.B)
        blks[:, 0, 0] = keys
        blks[:, 0, 1] = idxs
        return blks

    def _build_initial(self, initial: EMArray | None) -> None:
        """Seed level L with all ``n`` cells + its dummies, tag-sorted."""
        mach = self.machine
        L, key = self.L, self._keys[self.L]
        meta, payload = self.level_meta[L], self.level_payload[L]
        for lo, hi in scan_chunks(mach, self.n, streams=3):
            idxs = np.arange(lo, hi, dtype=np.int64)
            metas = self._meta_blocks(_prf_many(key, idxs), idxs)
            with hold_scan(mach, 3, hi - lo):
                if initial is not None:
                    mach.io_rounds([
                        ("r", initial, (lo, hi)),
                        ("w", meta, (lo, hi), metas),
                        ("w", payload, (lo, hi), lambda reads: reads[0]),
                    ])
                else:
                    mach.io_rounds([
                        ("w", meta, (lo, hi), metas),
                        ("w", payload, (lo, hi), empty_blocks(hi - lo, mach.B)),
                    ])
        # Dummies tagged PRF(key, n), PRF(key, n+1), ...; the remainder of
        # the level (capacity minus n reals minus the dummy budget) +inf.
        d = self.reals[L]
        for lo, hi in scan_chunks(mach, self.caps[L] - self.n, streams=2):
            ranks = np.arange(lo, hi, dtype=np.int64)
            tags = np.where(
                ranks < d, _prf_many(key, self.n + ranks), _INF_TAG
            )
            metas = self._meta_blocks(tags, np.full(hi - lo, self.n, dtype=np.int64))
            with hold_scan(mach, 2, hi - lo):
                mach.io_rounds([
                    ("w", meta, (self.n + lo, self.n + hi), metas),
                    ("w", payload, (self.n + lo, self.n + hi),
                     empty_blocks(hi - lo, mach.B)),
                ])
        oblivious_block_sort(mach, [meta, payload])
        self._reset_buffer()

    def _reset_buffer(self) -> None:
        mach = self.machine
        for lo, hi in scan_chunks(mach, self.s0, streams=2):
            infs = self._meta_blocks(
                np.full(hi - lo, _INF_TAG, dtype=np.int64),
                np.full(hi - lo, self.n, dtype=np.int64),
            )
            with hold_scan(mach, 2, hi - lo):
                mach.io_rounds([
                    ("w", self.buf_meta, (lo, hi), infs),
                    ("w", self.buf_payload, (lo, hi), empty_blocks(hi - lo, mach.B)),
                ])

    # -- access -------------------------------------------------------------

    def _access(
        self,
        i: int | None,
        new_block: np.ndarray | None,
        update_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Unified oblivious access; ``i=None`` performs a dummy access."""
        if i is not None and not (0 <= i < self.n):
            raise IndexError(f"logical index {i} out of range [0, {self.n})")
        mach = self.machine
        c = self._counters
        found: np.ndarray | None = None
        # 1. Scan the whole buffer (fixed pattern; freshest = latest slot).
        for lo, hi in scan_chunks(mach, self.s0, streams=2):
            with hold_scan(mach, 2, hi - lo):
                metas, pays = mach.io_rounds([
                    ("r", self.buf_meta, (lo, hi)),
                    ("r", self.buf_payload, (lo, hi)),
                ])
                if i is not None:
                    hits = np.flatnonzero(
                        (metas[:, 0, 1] == i) & (metas[:, 0, 0] != _INF_TAG)
                    )
                    if len(hits):
                        found = pays[hits[-1]].copy()
        with mach.cache.hold(3):
            # 2. Probe each occupied level, youngest to oldest.  Which
            #    levels are occupied is a public function of the access
            #    counter; the searched tag is fresh pseudorandomness
            #    either way, so the descent leaks nothing.
            for k in range(self.L + 1):
                if not self._occupied[k]:
                    continue
                if i is None or found is not None:
                    rank = self._dummies_used[k]
                    if rank >= self.reals[k]:
                        raise EMError(
                            f"hierarchical ORAM level {k} exhausted its dummies"
                        )
                    self._dummies_used[k] += 1
                    pay, hit = self._binary_search(k, _prf(self._keys[k], self.n + rank))
                    if not hit:  # oblint: public(hit) -- dummy-probe integrity check: fires only on PRF tag collision or corruption
                        raise EMError(
                            "ORAM dummy probe missed its tag — tag collision "
                            "or corrupted level"
                        )
                else:
                    # Real probe: the item may live in an older level (or
                    # not in this one at all) — a miss is a valid descent.
                    pay, hit = self._binary_search(k, _prf(self._keys[k], i))
                    if hit:
                        found = pay
            if i is not None and found is None:
                raise EMError(f"hierarchical ORAM lost logical cell {i}")
            # 3. Append to the buffer.
            if update_fn is not None and i is not None:
                value = update_fn(found if found is not None else self._empty_block())
            elif new_block is None:
                value = found
            else:
                value = new_block
            if i is None:
                buf_meta = self._meta_block(0, self.n)  # dummy entry
                buf_payload = self._empty_block()
            else:
                buf_meta = self._meta_block(0, i)
                buf_payload = value
            mach.write(self.buf_meta, c.epoch_position, buf_meta)
            mach.write(self.buf_payload, c.epoch_position, buf_payload)
        c.accesses += 1
        c.epoch_position += 1
        if c.epoch_position == self.s0:
            # Binary-counter cadence: spill into the smallest empty level,
            # or rebuild the bottom level from everything when none is.
            j = next((k for k in range(self.L) if not self._occupied[k]), None)
            if j is None:
                self._merge_into(self.L, include_target=True)
            else:
                self._merge_into(j, include_target=False)
        if i is None:
            return self._empty_block()
        return found if found is not None else self._empty_block()

    def _binary_search(self, k: int, tag: int) -> tuple[np.ndarray, bool]:
        """Fixed-length binary search for ``tag`` in level ``k``.

        Runs exactly ``ceil(log2(cap_k)) + 1`` probe iterations and one
        payload read whether or not the tag is present; on a miss the
        payload read lands at the descent's final position — like a hit,
        a deterministic function of the (pseudorandom) tag's rank.
        """
        mach = self.machine
        meta, payload = self.level_meta[k], self.level_payload[k]
        nblk = meta.num_blocks
        lo, hi = 0, nblk - 1
        found_slot = -1
        mid = 0
        for _ in range(ilog2(nblk) + 2):
            mid = (lo + hi) // 2  # oblint: public(mid) -- binary search over sorted PRF tags: the probe path depends only on pseudorandom tag order
            mb = mach.read(meta, mid)
            mid_tag = int(mb[0, 0])
            if mid_tag == tag:
                found_slot = mid
            if mid_tag < tag:
                lo = min(mid + 1, nblk - 1)
            else:
                hi = max(mid - 1, 0)
        slot = found_slot if found_slot >= 0 else mid  # oblint: public(slot) -- slot in the tag-sorted level is determined by PRF tag order alone
        return mach.read(payload, slot), found_slot >= 0

    # -- merge / rebuild ----------------------------------------------------

    def _merge_sources(
        self,
        src_levels: list[int],
        *,
        min_total: int,
        sort_by_index: bool,
    ) -> tuple[EMArray, EMArray]:
        """Merge buffer + ``src_levels``, keep the freshest copy per index.

        Returns (meta, payload) of ``max(min_total, buffer + sources)``
        slots in post-dedup tag order, or sorted by index (real items a
        sorted prefix) when ``sort_by_index``.
        """
        mach = self.machine
        total_src = self.s0 + sum(self.caps[k] for k in src_levels)
        total = max(total_src, min_total)
        span = self.s0 + self.L + 2
        meta = mach.alloc(total, f"{self.name}.merge.meta")
        payload = mach.alloc(total, f"{self.name}.merge.data")
        # Buffer first: slot p has staleness rank s0-1-p (later = fresher),
        # every level k a constant rank s0+k (younger level = fresher).
        for lo, hi in scan_chunks(mach, self.s0, streams=4):
            with hold_scan(mach, 4, hi - lo):
                def rekeyed_buf(reads, span=span, p0=lo):
                    idx = reads[0][:, 0, 1]
                    p = np.arange(p0, p0 + len(idx), dtype=np.int64)
                    keys = np.where(
                        idx < self.n, idx * span + (self.s0 - 1 - p), _INF_TAG
                    )
                    return self._meta_blocks(keys, idx)

                mach.io_rounds([
                    ("r", self.buf_meta, (lo, hi)),
                    ("w", meta, (lo, hi), rekeyed_buf),
                    ("r", self.buf_payload, (lo, hi)),
                    ("w", payload, (lo, hi), lambda reads: reads[2]),
                ])
        off = self.s0
        for k in src_levels:
            rank_k = self.s0 + k
            for lo, hi in scan_chunks(mach, self.caps[k], streams=4):
                with hold_scan(mach, 4, hi - lo):
                    def rekeyed_level(reads, span=span, rank=rank_k):
                        idx = reads[0][:, 0, 1]
                        keys = np.where(idx < self.n, idx * span + rank, _INF_TAG)
                        return self._meta_blocks(keys, idx)

                    mach.io_rounds([
                        ("r", self.level_meta[k], (lo, hi)),
                        ("w", meta, (off + lo, off + hi), rekeyed_level),
                        ("r", self.level_payload[k], (lo, hi)),
                        ("w", payload, (off + lo, off + hi),
                         lambda reads: reads[2]),
                    ])
            off += self.caps[k]
        for lo, hi in scan_chunks(mach, total - off, streams=2):
            infs = self._meta_blocks(
                np.full(hi - lo, _INF_TAG, dtype=np.int64),
                np.full(hi - lo, self.n, dtype=np.int64),
            )
            with hold_scan(mach, 2, hi - lo):
                mach.io_rounds([
                    ("w", meta, (off + lo, off + hi), infs),
                    ("w", payload, (off + lo, off + hi),
                     empty_blocks(hi - lo, mach.B)),
                ])
        oblivious_block_sort(mach, [meta, payload])
        # Dedup scan: the first slot of each index (freshest) survives.
        prev_idx = -1
        for lo, hi in scan_chunks(mach, meta.num_blocks, streams=2):
            with hold_scan(mach, 2, hi - lo):
                def deduped(reads, prev=prev_idx):
                    mb = reads[0]
                    idx = mb[:, 0, 1]
                    shifted = np.concatenate(([prev], idx[:-1]))
                    keep = (idx != shifted) & (idx < self.n)
                    out = mb.copy()
                    drop = ~keep
                    out[drop] = self._meta_blocks(
                        mb[drop, 0, 0],
                        np.full(int(drop.sum()), self.n, dtype=np.int64),
                    )
                    return out

                metas, _ = mach.io_rounds([
                    ("r", meta, (lo, hi)),
                    ("w", meta, (lo, hi), deduped),
                ])
                prev_idx = int(metas[-1, 0, 1])
        if sort_by_index:
            for lo, hi in scan_chunks(mach, meta.num_blocks, streams=2):
                with hold_scan(mach, 2, hi - lo):
                    def indexed(reads):
                        idx = reads[0][:, 0, 1]
                        keys = np.where(idx < self.n, idx, _INF_TAG)
                        return self._meta_blocks(keys, idx)

                    mach.io_rounds([
                        ("r", meta, (lo, hi)),
                        ("w", meta, (lo, hi), indexed),
                    ])
            oblivious_block_sort(mach, [meta, payload])
        return meta, payload

    def _merge_into(self, j: int, *, include_target: bool) -> None:
        """Spill the buffer (+ levels below ``j``, + ``j`` itself on a full
        merge) into level ``j`` under a fresh key."""
        mach = self.machine
        src_levels = [k for k in range(j) if self._occupied[k]]
        if include_target:
            src_levels.append(j)
        meta, payload = self._merge_sources(
            src_levels, min_total=self.caps[j], sort_by_index=False
        )
        new_key = int(self.rng.integers(0, 2**62))
        d = self.reals[j]
        # Fresh tags: reals by index, the first d dummies get probe-able
        # ranked tags, surplus dummies +inf (truncated after the sort).
        dummies_before = 0
        for lo, hi in scan_chunks(mach, meta.num_blocks, streams=2):
            with hold_scan(mach, 2, hi - lo):
                def retagged(reads, base=dummies_before):
                    mb = reads[0]
                    idx = mb[:, 0, 1]
                    is_dummy = idx >= self.n
                    rank = base + np.cumsum(is_dummy) - 1
                    tags = _prf_many(new_key, idx)
                    dummy_tags = np.where(
                        rank < d,
                        _prf_many(new_key, self.n + np.maximum(rank, 0)),
                        _INF_TAG,
                    )
                    return self._meta_blocks(
                        np.where(is_dummy, dummy_tags, tags), idx
                    )

                metas, _ = mach.io_rounds([
                    ("r", meta, (lo, hi)),
                    ("w", meta, (lo, hi), retagged),
                ])
                dummies_before += int(np.count_nonzero(metas[:, 0, 1] >= self.n))
        oblivious_block_sort(mach, [meta, payload])
        # The first cap_j slots (all reals + the d fresh dummies) become
        # the new level j; the +inf surplus is dropped.
        for lo, hi in scan_chunks(mach, self.caps[j], streams=4):
            with hold_scan(mach, 4, hi - lo):
                mach.io_rounds([
                    ("r", meta, (lo, hi)),
                    ("w", self.level_meta[j], (lo, hi), lambda reads: reads[0]),
                    ("r", payload, (lo, hi)),
                    ("w", self.level_payload[j], (lo, hi), lambda reads: reads[2]),
                ])
        mach.free(meta)
        mach.free(payload)
        self._reset_buffer()
        for k in src_levels:
            self._occupied[k] = False
        self._occupied[j] = True
        self._keys[j] = new_key
        self._dummies_used[j] = 0
        c = self._counters
        c.rebuilds += 1
        c.epoch_position = 0
