"""Oblivious RAM simulation substrate.

Theorem 4 needs a data-oblivious simulation of the IBLT ``listEntries``
RAM program; the paper invokes the Goodrich–Mitzenmacher simulation with
``O(log^2 r)`` amortized overhead.  Two interchangeable backends provide
it (plus a linear-scan baseline):

* :class:`~repro.oram.square_root.SquareRootORAM` — the classical
  Goldreich–Ostrovsky square-root scheme, ``O(sqrt(n) log^2 n)``
  amortized, small constants;
* :class:`~repro.oram.hierarchical.HierarchicalORAM` — the
  Goldreich–Ostrovsky hierarchical (log²-style) scheme, polylog
  amortized, larger constants.

Both rebuild through the oblivious block sort, so the paper's closing
observation — a faster oblivious sort improves ORAM simulation overhead —
applies to either; experiment E9 (:func:`measure_oram_overhead`) measures
where the crossover between them lands.  :func:`make_oram` maps a public
backend name to a construction; the cost model
(``analysis/bounds.py``) prices both so the plan optimizer can select the
backend per shape.
"""

from repro.oram.hierarchical import HierarchicalORAM
from repro.oram.linear import LinearScanORAM
from repro.oram.simulation import ORAMStats, measure_oram_overhead
from repro.oram.square_root import SquareRootORAM

__all__ = [
    "LinearScanORAM",
    "SquareRootORAM",
    "HierarchicalORAM",
    "ORAMStats",
    "ORAM_BACKENDS",
    "make_oram",
    "measure_oram_overhead",
]

#: Public backend names accepted by :func:`make_oram` (and the
#: ``oram_backend`` parameter of the registered pipeline steps).
ORAM_BACKENDS = ("square_root", "hierarchical")


def make_oram(
    backend,
    machine,
    n,
    rng,
    *,
    initial=None,
    name="oram",
    shelter_factor=1,
):
    """Construct an ORAM backend by public name.

    ``shelter_factor`` is the square-root scheme's epoch-length knob; the
    hierarchical scheme has no equivalent (its epochs are already
    polylog), so the argument is accepted — callers like the Theorem-4
    peel pass it unconditionally — and ignored there.
    """
    if backend == "square_root":
        return SquareRootORAM(
            machine, n, rng, initial=initial, name=name,
            shelter_factor=shelter_factor,
        )
    if backend == "hierarchical":
        return HierarchicalORAM(machine, n, rng, initial=initial, name=name)
    raise ValueError(
        f"unknown ORAM backend {backend!r}; expected one of {ORAM_BACKENDS}"
    )
