"""Oblivious RAM simulation substrate.

Theorem 4 needs a data-oblivious simulation of the IBLT ``listEntries``
RAM program; the paper invokes the Goodrich–Mitzenmacher simulation with
``O(log^2 r)`` amortized overhead.  We substitute the classical
square-root ORAM of Goldreich–Ostrovsky (whose rebuilds use our oblivious
block sort), trading the polylog overhead for ``O(sqrt(n) log^2 n)``
amortized — the *obliviousness* guarantee and the role in Theorem 4 are
preserved, and the overhead is measured in experiment E9.
"""

from repro.oram.linear import LinearScanORAM
from repro.oram.square_root import SquareRootORAM
from repro.oram.simulation import ORAMStats

__all__ = ["LinearScanORAM", "SquareRootORAM", "ORAMStats"]
