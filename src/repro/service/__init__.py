"""The session service layer: streaming sources and multi-tenant serving.

Two layers grow the single-session pipeline API toward the ROADMAP's
"heavy traffic from millions of users" setting:

* **Streaming sources** (:mod:`repro.service.streaming`): a plan's
  input may arrive as a public schedule of mini-batch chunks instead of
  one monolithic upload.  The adversary sees the same ``ALLOC`` of the
  public total either way; only the round-trip count and the client's
  peak residency change.
* **The session service** (:mod:`repro.service.service`): an
  :class:`ObliviousService` multiplexes many sessions over one shared
  storage backend, with token-bucket admission control
  (:mod:`repro.service.admission`), per-tenant quotas, idle eviction and
  a cross-session I/O batcher (:mod:`repro.service.batcher`) that
  coalesces concurrent plans' round-robin I/O into shared rounds while
  each session's own serialized trace stays its canonical adversary
  view.
"""

from repro.service.admission import ServiceLimits, TokenBucket
from repro.service.batcher import BatchReport, CrossSessionBatcher
from repro.service.service import ObliviousService, TenantState
from repro.service.streaming import ChunkSchedule, StreamSource

__all__ = [
    "ChunkSchedule",
    "StreamSource",
    "ServiceLimits",
    "TokenBucket",
    "BatchReport",
    "CrossSessionBatcher",
    "ObliviousService",
    "TenantState",
]
