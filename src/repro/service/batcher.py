"""Cross-session I/O batching: coalescing concurrent plans' round-robin
rounds.

Every hot loop in this library issues its I/O through
:meth:`~repro.em.machine.EMMachine.io_rounds`-style batched calls — ``k``
round-robin rounds of ``t`` parallel streams.  When several sessions run
concurrently over shared storage, rounds from *different* sessions are
compatible the same way streams within one call are: the server can
serve session A's round ``j`` and session B's round ``j`` in one
turnaround, because neither depends on the other's outcome (sessions
never share arrays).

:class:`CrossSessionBatcher` executes several
:meth:`~repro.api.executor.Executor.stepwise` plans in deterministic
round-robin *waves* (one completed step of each live plan per wave) and
accounts both views of the I/O volume:

* **solo rounds** — the sum of every session's round counts, what the
  sessions would pay executed back-to-back;
* **shared rounds** — engine calls zipped positionally across the
  wave's sessions, each position costing the *maximum* round count
  among them (the coalesced round-robin turnarounds).

Each session keeps its own machine, counters and trace — the serialized
per-session transcript is its canonical adversary view and is
byte-identical to a solo run (the batcher observes only batch *shapes*
via :attr:`~repro.em.machine.EMMachine.io_observer`, which sees public
schedule data and never touches the trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import zip_longest
from typing import Iterator, Sequence

from repro.em.machine import EMMachine

__all__ = ["BatchReport", "CrossSessionBatcher"]


@dataclass(frozen=True)
class BatchReport:
    """I/O-round accounting of one batched execution.

    ``solo_rounds`` is the back-to-back total; ``shared_rounds`` the
    coalesced total; ``per_session`` each session's own solo rounds;
    ``waves`` how many round-robin waves the batch took.
    """

    waves: int
    solo_rounds: int
    shared_rounds: int
    per_session: dict[str, int]

    @property
    def reduction(self) -> float:
        """Fraction of round turnarounds saved by coalescing (0.0 when
        nothing ran)."""
        if not self.solo_rounds:
            return 0.0
        return 1.0 - self.shared_rounds / self.solo_rounds

    def __str__(self) -> str:
        return (
            f"BatchReport(waves={self.waves}, solo={self.solo_rounds}, "
            f"shared={self.shared_rounds}, "
            f"reduction={100 * self.reduction:.1f}%)"
        )


class CrossSessionBatcher:
    """Drives several stepwise plans in waves, coalescing their rounds.

    ``run`` takes ``(name, machine, stepper)`` triples — ``stepper`` a
    generator from :meth:`~repro.api.executor.Executor.stepwise` over
    ``machine`` — and returns ``(results, report)`` with each plan's
    :class:`~repro.api.result.PlanResult` by name.  Execution is
    deterministic and single-threaded: wave ``w`` runs one step of every
    still-live plan in submission order, so each session's randomness,
    counters and trace are exactly its solo run's.  If any plan raises,
    every other plan's generator is closed first (their ``finally``
    cleanup frees all plan arrays) and the error propagates.
    """

    def run(
        self, plans: Sequence[tuple[str, EMMachine, Iterator]]
    ) -> tuple[dict, BatchReport]:
        names = [name for name, _, _ in plans]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate plan names: {names}")
        live: dict[str, tuple[EMMachine, Iterator]] = {
            name: (machine, stepper) for name, machine, stepper in plans
        }
        results: dict = {}
        per_session: dict[str, int] = {name: 0 for name in names}
        solo_rounds = 0
        shared_rounds = 0
        waves = 0
        try:
            while live:
                waves += 1
                # Per-session engine-call shapes observed this wave.
                wave_calls: dict[str, list[int]] = {}
                for name in list(live):
                    machine, stepper = live[name]
                    calls: list[int] = []
                    machine.io_observer = (
                        lambda rounds, streams, _c=calls: _c.append(rounds)
                    )
                    try:
                        next(stepper)
                    except StopIteration as stop:
                        results[name] = stop.value
                        del live[name]
                    finally:
                        machine.io_observer = None
                    wave_calls[name] = calls
                # Coalesce: engine calls zip positionally across the
                # wave's sessions; each position is served in
                # max(rounds) shared turnarounds.
                for name, calls in wave_calls.items():
                    rounds = sum(calls)
                    per_session[name] += rounds
                    solo_rounds += rounds
                shared_rounds += sum(
                    max(position)
                    for position in zip_longest(
                        *wave_calls.values(), fillvalue=0
                    )
                )
        except BaseException:
            for machine, stepper in live.values():
                machine.io_observer = None
                stepper.close()
            raise
        return results, BatchReport(
            waves=waves,
            solo_rounds=solo_rounds,
            shared_rounds=shared_rounds,
            per_session=per_session,
        )
