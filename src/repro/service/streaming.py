"""Streaming plan sources: a public chunk schedule of mini-batch uploads.

A :class:`StreamSource` is the client's declaration that a plan input
arrives as ``num_chunks`` uploads of ``chunk_records`` records each —
the :class:`ChunkSchedule` — rather than one monolithic
:meth:`~repro.em.machine.EMMachine.load_records` call.  The executor
provisions the server array once for the *public total*
(:meth:`~repro.em.machine.EMMachine.begin_chunked_load`, emitting
exactly the ``ALLOC`` a one-shot upload of that total would) and then
feeds each chunk through :meth:`~repro.em.machine.EMMachine.load_chunk`.

Obliviousness contract.  The schedule — count × chunk size — is public,
like every ``n_items`` in this library.  What must stay hidden is the
*data-dependent arrival size*: a short chunk (fewer real records than
``chunk_records``) is padded with ``NULL`` rows client-side, so every
chunk writes exactly ``chunk_records`` cells and the server-side layout
is a fixed function of the schedule alone.  Padding makes the staged
``n_items`` the padded total, which is why only algorithms declaring
``null_tolerant=True`` (see :class:`repro.api.registry.AlgorithmSpec`)
may consume a stream directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.em.block import NULL_KEY, RECORD_WIDTH

__all__ = ["ChunkSchedule", "StreamSource"]


@dataclass(frozen=True)
class ChunkSchedule:
    """The public shape of a streamed upload: ``num_chunks`` client→server
    round trips of ``chunk_records`` records each."""

    num_chunks: int
    chunk_records: int

    def __post_init__(self) -> None:
        if self.num_chunks < 1:
            raise ValueError(
                f"num_chunks must be >= 1, got {self.num_chunks}"
            )
        if self.chunk_records < 1:
            raise ValueError(
                f"chunk_records must be >= 1, got {self.chunk_records}"
            )

    @property
    def total_records(self) -> int:
        """The public total the server provisions for."""
        return self.num_chunks * self.chunk_records


class StreamSource:
    """A plan source whose records arrive as scheduled mini-batches.

    Parameters
    ----------
    chunks:
        The mini-batches, each convertible to an ``(k, 2)`` int64 record
        array (1-D key arrays get zero values, as in
        :meth:`repro.api.ObliviousSession.dataset`).  Every chunk must
        hold at most ``chunk_records`` records; short chunks are padded
        with ``NULL`` rows so arrival sizes never leak.
    chunk_records:
        The public per-chunk record count.  Defaults to the length of
        the largest chunk.
    num_chunks:
        The public chunk count.  Defaults to ``len(chunks)``; declaring
        more appends all-``NULL`` ghost chunks (a client hiding even how
        many batches it had).
    """

    def __init__(
        self,
        chunks: Sequence,
        *,
        chunk_records: int | None = None,
        num_chunks: int | None = None,
    ) -> None:
        normalized = [self._as_chunk(c) for c in chunks]
        if not normalized and num_chunks is None:
            raise ValueError("a stream needs at least one chunk")
        if chunk_records is None:
            chunk_records = max((len(c) for c in normalized), default=0)
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        if num_chunks is None:
            num_chunks = len(normalized)
        if len(normalized) > num_chunks:
            raise ValueError(
                f"{len(normalized)} chunks exceed the declared schedule "
                f"of {num_chunks}"
            )
        for i, c in enumerate(normalized):
            if len(c) > chunk_records:
                raise ValueError(
                    f"chunk {i} holds {len(c)} records, exceeding the "
                    f"public chunk size {chunk_records}"
                )
        self.schedule = ChunkSchedule(num_chunks, chunk_records)
        self._chunks = normalized

    @staticmethod
    def _as_chunk(data) -> np.ndarray:
        arr = np.asarray(data, dtype=np.int64)
        if arr.ndim == 1:
            arr = np.stack(
                [arr, np.zeros(len(arr), dtype=np.int64)], axis=1
            )
        if arr.ndim != 2 or arr.shape[1] != RECORD_WIDTH:
            raise ValueError(
                f"chunk must be 1-D keys or (k, 2) records, "
                f"got shape {arr.shape}"
            )
        return arr

    @property
    def n_items(self) -> int:
        """The staged item count: the *public* padded total."""
        return self.schedule.total_records

    @property
    def real_records(self) -> int:
        """Actual records supplied (private; never drives the trace)."""
        return sum(len(c) for c in self._chunks)

    def padded_chunks(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(offset_records, padded_chunk)`` per scheduled chunk.

        Every yielded chunk is exactly ``chunk_records`` rows — real
        records first, ``NULL`` padding after — so the upload pattern is
        a fixed function of the schedule.  Ghost chunks (declared but
        not supplied) are all padding.
        """
        size = self.schedule.chunk_records
        for i in range(self.schedule.num_chunks):
            padded = np.zeros((size, RECORD_WIDTH), dtype=np.int64)
            padded[:, 0] = NULL_KEY
            if i < len(self._chunks):
                chunk = self._chunks[i]
                padded[: len(chunk)] = chunk
            yield i * size, padded

    def materialize(self) -> np.ndarray:
        """The equivalent one-shot upload: all padded chunks concatenated
        (what :meth:`~repro.em.machine.EMMachine.load_records` would have
        been handed to produce the identical server layout)."""
        return np.concatenate([c for _, c in self.padded_chunks()])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamSource(chunks={self.schedule.num_chunks}, "
            f"chunk_records={self.schedule.chunk_records})"
        )
