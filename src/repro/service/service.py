"""The multi-tenant session service: shared storage, admission, batching.

:class:`ObliviousService` multiplexes many
:class:`~repro.api.ObliviousSession`\\ s over **one shared storage
backend** — the serving arrangement the ROADMAP's "heavy traffic" north
star asks for.  Each session still owns its machine, counters, seed
derivation and trace (its canonical adversary view); only the bytes
live together, and :class:`~repro.em.machine.EMMachine` is built with
``owns_backend=False`` so a session teardown frees its arrays without
destroying its neighbours'.

On top of that substrate the service adds the serving-frontend
concerns:

* **admission control** — a :class:`~repro.service.admission.TokenBucket`
  rate gate plus occupancy limits (resident bytes, concurrent plans,
  per-tenant handles), rejecting with
  :class:`~repro.errors.ServiceBusy` + ``retry_after``;
* **idle-session eviction** — :meth:`ObliviousService.evict_idle`
  reclaims sessions (and their resident bytes) that sat idle past the
  configured timeout;
* **cross-session batching** — :meth:`ObliviousService.run_batch`
  drives several admitted plans through the
  :class:`~repro.service.batcher.CrossSessionBatcher`, coalescing their
  round-robin I/O while each session's serialized trace stays
  byte-identical to its solo run.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.api.config import EMConfig, RetryPolicy
from repro.api.executor import Executor
from repro.api.session import ObliviousSession
from repro.em.block import RECORD_WIDTH
from repro.errors import ServiceBusy
from repro.service.admission import ServiceLimits, TokenBucket
from repro.service.batcher import BatchReport, CrossSessionBatcher
from repro.util.mathx import ceil_div

__all__ = ["ObliviousService", "TenantState"]

#: Bytes per record cell (two int64 words).
_CELL_BYTES = RECORD_WIDTH * 8


class TenantState:
    """One tenant's live sessions and occupancy, as the service sees it."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: session → clock timestamp of its last service-run activity.
        self.sessions: dict[ObliviousSession, float] = {}

    @property
    def resident_handles(self) -> int:
        """Live server arrays across this tenant's sessions."""
        return sum(len(s.machine._arrays) for s in self.sessions)

    @property
    def resident_bytes(self) -> int:
        """Bytes of shared storage this tenant's sessions hold."""
        return sum(s.machine.resident_bytes for s in self.sessions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TenantState({self.name!r}, sessions={len(self.sessions)}, "
            f"handles={self.resident_handles})"
        )


class ObliviousService:
    """Serve many oblivious sessions over one storage backend.

    Parameters
    ----------
    config:
        Machine shape and backend for every session (the backend is
        instantiated **once** and shared).
    limits:
        :class:`~repro.service.admission.ServiceLimits`; default limits
        are permissive except for four concurrent plans.
    seed:
        Service root seed; session ``i`` defaults to ``seed + i`` unless
        the caller passes an explicit per-session seed (solo-vs-service
        trace comparisons pin the same seed on both sides).
    clock:
        Monotonic-seconds callable; tests inject a fake clock to drive
        the token bucket and idle eviction deterministically.

    Use as a context manager (or call :meth:`close`) so the shared
    backend is reclaimed::

        with ObliviousService(EMConfig(M=64, B=4), seed=3) as svc:
            session = svc.session("tenant-a")
            plan = session.stream(chunks).sort().plan()
            result = svc.execute("tenant-a", plan)
    """

    def __init__(
        self,
        config: EMConfig | None = None,
        *,
        limits: ServiceLimits | None = None,
        seed: int = 0,
        clock=time.monotonic,
        **overrides: Any,
    ) -> None:
        config = config if config is not None else EMConfig()
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.limits = limits if limits is not None else ServiceLimits()
        self.seed = int(seed)
        self._clock = clock
        self.backend = config.make_backend()
        self.bucket = TokenBucket(
            self.limits.admit_burst, self.limits.admit_per_second, clock
        )
        self._tenants: dict[str, TenantState] = {}
        self._active_plans = 0
        self._session_count = 0
        self._closed = False

    # -- tenants and sessions ----------------------------------------------

    def tenant(self, name: str) -> TenantState:
        """This tenant's state (created on first use)."""
        state = self._tenants.get(name)
        if state is None:
            state = self._tenants[name] = TenantState(name)
        return state

    def tenants(self) -> list[str]:
        """Known tenant names, sorted."""
        return sorted(self._tenants)

    def session(
        self,
        tenant: str,
        *,
        seed: int | None = None,
        retry: RetryPolicy | None = None,
        optimize: bool | str = False,
    ) -> ObliviousSession:
        """A fresh session for ``tenant`` over the shared backend.

        The session is a full :class:`~repro.api.ObliviousSession` —
        same seed derivation, same pipeline API — whose machine shares
        the service backend without owning it, so its transcript is
        byte-identical to a solo session's at the same seed.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        machine = self.config.make_machine(self.backend, owns_backend=False)
        sess = ObliviousSession(
            self.config,
            seed=self.seed + self._session_count if seed is None else seed,
            retry=retry,
            optimize=optimize,
            machine=machine,
        )
        self._session_count += 1
        self.tenant(tenant).sessions[sess] = self._clock()
        return sess

    # -- admission ----------------------------------------------------------

    def _plan_bytes(self, plan) -> int:
        """Estimated peak footprint of a plan: its source layouts plus
        equal headroom for the staged output of each step."""
        cells = 0
        for node in plan.nodes:
            if not node.is_source or node.resident is not None:
                continue  # resident sources already count in live_bytes
            n = max(1, node.n_items)
            cells += ceil_div(n, self.config.B) * self.config.B
        return 2 * cells * _CELL_BYTES

    def admit(self, tenant: str, plan) -> None:
        """Admit one plan or raise :class:`~repro.errors.ServiceBusy`.

        On success the plan holds one concurrency slot; :meth:`release`
        must be called when it finishes (:meth:`execute` and
        :meth:`run_batch` do this for you).
        """
        if self._closed:
            raise RuntimeError("service is closed")
        limits = self.limits
        if not self.bucket.try_acquire(1.0):
            raise ServiceBusy(
                f"admission rate exceeded for tenant {tenant!r}",
                retry_after=self.bucket.retry_after(1.0),
                reason="rate",
            )
        try:
            if self._active_plans >= limits.max_concurrent_plans:
                raise ServiceBusy(
                    f"{self._active_plans} plans already running "
                    f"(limit {limits.max_concurrent_plans})",
                    retry_after=limits.busy_retry_after,
                    reason="concurrent_plans",
                )
            if limits.max_resident_bytes is not None:
                needed = self._plan_bytes(plan)
                live = self.backend.live_bytes
                if live + needed > limits.max_resident_bytes:
                    raise ServiceBusy(
                        f"plan needs ~{needed} bytes but only "
                        f"{limits.max_resident_bytes - live} of "
                        f"{limits.max_resident_bytes} remain resident",
                        retry_after=limits.busy_retry_after,
                        reason="resident_bytes",
                    )
            state = self.tenant(tenant)
            if state.resident_handles >= limits.max_tenant_handles:
                raise ServiceBusy(
                    f"tenant {tenant!r} holds {state.resident_handles} "
                    f"resident handles (quota {limits.max_tenant_handles})",
                    retry_after=limits.busy_retry_after,
                    reason="tenant_handles",
                )
        except ServiceBusy:
            self.bucket.refund(1.0)
            raise
        self._active_plans += 1

    def release(self) -> None:
        """Return one admitted plan's concurrency slot."""
        self._active_plans = max(0, self._active_plans - 1)

    # -- execution -----------------------------------------------------------

    def _touch(self, tenant: str, session: ObliviousSession) -> None:
        state = self.tenant(tenant)
        if session in state.sessions:
            state.sessions[session] = self._clock()

    def execute(self, tenant: str, plan, optimize: bool | str | None = None):
        """Admit and run one plan, returning its
        :class:`~repro.api.result.PlanResult`."""
        self.admit(tenant, plan)
        try:
            return plan.run(optimize)
        finally:
            self.release()
            self._touch(tenant, plan.session)

    def run_batch(
        self,
        submissions: Iterable[tuple[str, str, Any]],
        optimize: bool | str | None = None,
    ) -> tuple[dict, BatchReport]:
        """Admit and run several plans concurrently with cross-session
        I/O batching.

        ``submissions`` is ``(name, tenant, plan)`` triples.  All plans
        are admitted up front (on any rejection the already-admitted
        ones are released and the :class:`~repro.errors.ServiceBusy`
        propagates — all-or-nothing), then interleaved one step per
        wave by the :class:`~repro.service.batcher.CrossSessionBatcher`.
        Returns ``(results_by_name, BatchReport)``; each session's own
        trace is byte-identical to running its plan alone.
        """
        submissions = list(submissions)
        admitted = 0
        try:
            for _, tenant, plan in submissions:
                self.admit(tenant, plan)
                admitted += 1
        except ServiceBusy:
            for _ in range(admitted):
                self.release()
            raise
        try:
            plans = [
                (
                    name,
                    plan.session.machine,
                    Executor(plan.session).stepwise(plan, optimize),
                )
                for name, _, plan in submissions
            ]
            return CrossSessionBatcher().run(plans)
        finally:
            for _, tenant, plan in submissions:
                self.release()
                self._touch(tenant, plan.session)

    # -- occupancy and lifecycle ----------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Live bytes across the shared backend."""
        return self.backend.live_bytes

    def evict_idle(self, *, timeout: float | None = None) -> list[str]:
        """Close sessions idle for at least ``timeout`` clock seconds
        (default: the configured ``idle_timeout``), freeing their
        resident arrays; returns ``"tenant"`` names, one per evicted
        session."""
        timeout = self.limits.idle_timeout if timeout is None else timeout
        now = self._clock()
        evicted: list[str] = []
        for state in self._tenants.values():
            for sess, last in list(state.sessions.items()):
                if now - last >= timeout:
                    del state.sessions[sess]
                    sess.close()  # frees arrays; shared backend stays open
                    evicted.append(state.name)
        return evicted

    def close(self) -> None:
        """Close every session, then the shared backend (idempotent)."""
        if self._closed:
            return
        for state in self._tenants.values():
            for sess in list(state.sessions):
                sess.close()
            state.sessions.clear()
        self.backend.close()
        self._closed = True

    def __enter__(self) -> "ObliviousService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ObliviousService(tenants={len(self._tenants)}, "
            f"active_plans={self._active_plans}, "
            f"resident_bytes={self.resident_bytes})"
        )
