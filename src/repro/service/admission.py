"""Admission control for the session service: limits and a token bucket.

The service guards three resources when a plan asks to run:

* a **rate** of plan admissions, enforced by the classic
  :class:`TokenBucket` (capacity = burst, continuous refill against an
  injectable clock — tests drive a fake clock, production the wall
  clock);
* **bounded resident bytes** across the shared storage backend
  (:attr:`~repro.em.storage.StorageBackend.live_bytes` plus the
  requesting plan's estimated footprint);
* **bounded concurrency** — plans running at once, and per-tenant
  resident-handle quotas.

A request that would exceed any of them is rejected with
:class:`repro.errors.ServiceBusy` carrying ``retry_after``: for the
bucket, the exact refill time; for the occupancy limits, an advisory
interval after which capacity has likely turned over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

__all__ = ["ServiceLimits", "TokenBucket"]


@dataclass(frozen=True)
class ServiceLimits:
    """Resource bounds one :class:`~repro.service.ObliviousService` enforces.

    ``max_resident_bytes`` bounds the shared backend's live bytes
    (``None``: unbounded); ``max_concurrent_plans`` bounds plans running
    at once; ``max_tenant_handles`` bounds one tenant's live server
    arrays; ``admit_burst``/``admit_per_second`` parameterize the
    admission token bucket (infinite rate: never rate-limited);
    ``idle_timeout`` is how long a session may sit idle before
    :meth:`~repro.service.ObliviousService.evict_idle` reclaims it;
    ``busy_retry_after`` is the advisory wait attached to occupancy
    (non-bucket) rejections.
    """

    max_resident_bytes: int | None = None
    max_concurrent_plans: int = 4
    max_tenant_handles: int = 64
    admit_burst: int = 8
    admit_per_second: float = math.inf
    idle_timeout: float = math.inf
    busy_retry_after: float = 0.05

    def __post_init__(self) -> None:
        if self.max_concurrent_plans < 1:
            raise ValueError("max_concurrent_plans must be >= 1")
        if self.max_tenant_handles < 1:
            raise ValueError("max_tenant_handles must be >= 1")
        if self.admit_burst < 1:
            raise ValueError("admit_burst must be >= 1")
        if self.admit_per_second <= 0:
            raise ValueError("admit_per_second must be positive")


class TokenBucket:
    """A token bucket over an injectable clock.

    Holds up to ``capacity`` tokens, refilling at ``rate`` tokens per
    clock second.  :meth:`try_acquire` spends tokens if available;
    :meth:`retry_after` reports how long until a request could succeed
    (the value :class:`~repro.errors.ServiceBusy` advertises);
    :meth:`refund` returns tokens (e.g. for an admitted plan that never
    ran).  An infinite ``rate`` makes the bucket a no-op that always
    admits.
    """

    def __init__(
        self,
        capacity: int,
        rate: float,
        clock: Callable[[], float],
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.capacity = float(capacity)
        self.rate = float(rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._last = clock()

    def _advance(self) -> None:
        now = self._clock()
        if now > self._last and not math.isinf(self.rate):
            self._tokens = min(
                self.capacity, self._tokens + (now - self._last) * self.rate
            )
        self._last = now

    @property
    def tokens(self) -> float:
        """Tokens available right now."""
        self._advance()
        return self.capacity if math.isinf(self.rate) else self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if available; returns whether it did."""
        self._advance()
        if math.isinf(self.rate):
            return True
        if self._tokens + 1e-9 >= n:
            self._tokens -= n
            return True
        return False

    def retry_after(self, n: float = 1.0) -> float:
        """Clock seconds until ``n`` tokens could be acquired (0.0 if
        available now; ``inf`` if ``n`` exceeds the bucket outright)."""
        self._advance()
        if math.isinf(self.rate):
            return 0.0
        if n > self.capacity:
            return math.inf
        deficit = n - self._tokens
        return max(0.0, deficit / self.rate)

    def refund(self, n: float = 1.0) -> None:
        """Return ``n`` tokens (clamped to capacity)."""
        self._advance()
        if not math.isinf(self.rate):
            self._tokens = min(self.capacity, self._tokens + n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TokenBucket(tokens={self.tokens:.2f}/{self.capacity:.0f}, "
            f"rate={self.rate}/s)"
        )
