"""Pass 3: parallel-safety of ParallelIOEngine worker shards.

PR 7's worker pool moves bytes in parallel but keeps every piece of
*accounting* — trace rows, ciphertext version bumps, I/O meters,
storage ledgers — in the calling thread's sequential epilogue.  That
invariant is what makes the adversary-visible transcript (and the
counters the benchmarks report) deterministic under any worker
interleaving.  This pass encodes it as three checkable rules over the
code reachable from worker entry points:

* ``PAR301`` — attribute mutation of shared objects (closure/engine
  state).  Workers may store into array *elements* (that is the job),
  never rebind attributes or bump counters on shared objects;
* ``PAR302`` — calls into epilogue-only APIs (``AccessTrace`` row
  recording, ``CiphertextVersions`` re-encryption bumps, machine
  ``_notify_io``/observer hooks);
* ``PAR303`` — machine I/O entry points or storage-ledger calls from
  a worker (workers receive raw ndarray views, they do not re-enter
  the machine).

Worker entries are found structurally: nested functions named ``job``
inside ``_*_job`` builders, call targets passed to ``.submit(...)``,
and the process-pool shard ``_memmap_mix_shard``.
"""

from __future__ import annotations

import ast

from repro.lint.conformance import reachable
from repro.lint.findings import Finding
from repro.lint.model import FunctionInfo, ModuleInfo, Project
from repro.lint.taint import MACHINE_OPS

__all__ = ["check_parallel_safety", "worker_entries"]

#: Epilogue-only API names (sequential-side accounting).
EPILOGUE_ATTRS = {
    "record",
    "record_batch",
    "record_events",
    "append_rows",
    "reencrypt",
    "reencrypt_many",
    "reencrypt_range",
    "_notify_io",
    "_count_batch",
    "on_io",
    "io_observer",
}

#: Machine/storage entry points workers must not re-enter.  Scalar
#: read/write are included: inside a worker there is no ORAM frontend,
#: so any read/write attribute call is a machine re-entry.
IO_ATTRS = (
    set(MACHINE_OPS)
    | {"read", "write", "allocate", "release", "live_bytes", "_ledger"}
) - {"raw", "flat"}


def worker_entries(mod: ModuleInfo) -> list[FunctionInfo]:
    """Worker-side entry points of one module."""
    entries: dict[str, FunctionInfo] = {}
    for qual, info in mod.functions.items():
        parts = qual.split(".")
        if info.name == "job" and len(parts) >= 2 and parts[-2].endswith("_job"):
            entries[qual] = info
        if info.name == "_memmap_mix_shard":
            entries[qual] = info
    # Call targets handed to pool.submit(fn, ...): the submitted fn
    # (and its callable args) run on a worker thread.
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
            continue
        for arg in node.args:
            name = None
            if isinstance(arg, ast.Name):
                name = arg.id
            elif isinstance(arg, ast.Attribute):
                name = arg.attr
            if name is None:
                continue
            for qual, info in mod.functions.items():
                if qual == name or qual.endswith(f".{name}") or info.name == name:
                    entries.setdefault(qual, info)
    return sorted(entries.values(), key=lambda f: f.line)


def _check_worker(project: Project, entry: FunctionInfo) -> list[Finding]:
    findings: list[Finding] = []
    for func in reachable(project, entry):
        local_objs = set(func.params)
        # Objects constructed inside the worker are private to it.
        created = {
            t.id
            for stmt in ast.walk(func.node)
            if isinstance(stmt, ast.Assign)
            for t in stmt.targets
            if isinstance(t, ast.Name) and isinstance(stmt.value, ast.Call)
        }
        chain = (
            (f"worker entry {entry.qualname}",)
            if func is not entry
            else ()
        )
        for node in ast.walk(func.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    if not isinstance(t, ast.Attribute):
                        continue
                    base = t.value
                    base_name = base.id if isinstance(base, ast.Name) else None
                    if base_name in created:
                        continue
                    findings.append(
                        Finding(
                            rule="PAR301",
                            path=func.module.relpath,
                            line=node.lineno,
                            message=(
                                f"worker-reachable '{func.name}' mutates "
                                f"shared attribute "
                                f"'{base_name or '<expr>'}.{t.attr}'; "
                                "accounting belongs in the sequential "
                                "epilogue"
                            ),
                            chain=chain,
                        )
                    )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                attr = node.func.attr
                if attr in EPILOGUE_ATTRS:
                    findings.append(
                        Finding(
                            rule="PAR302",
                            path=func.module.relpath,
                            line=node.lineno,
                            message=(
                                f"worker-reachable '{func.name}' calls "
                                f"epilogue-only API '.{attr}()'; trace/"
                                "version/meter updates must stay sequential"
                            ),
                            chain=chain,
                        )
                    )
                elif attr in IO_ATTRS and not _is_local_elementwise(node, local_objs):
                    findings.append(
                        Finding(
                            rule="PAR303",
                            path=func.module.relpath,
                            line=node.lineno,
                            message=(
                                f"worker-reachable '{func.name}' calls "
                                f"machine/storage entry point '.{attr}()'; "
                                "workers only move bytes between buffers"
                            ),
                            chain=chain,
                        )
                    )
    return findings


def _is_local_elementwise(node: ast.Call, local_objs: set[str]) -> bool:
    """``buf.read()`` on a worker-local file object is not a machine
    re-entry; only flag calls whose receiver is plausibly shared —
    conservatively, anything that is not a call result."""
    recv = node.func.value
    return isinstance(recv, ast.Call)


def check_parallel_safety(
    project: Project, modules: list[ModuleInfo]
) -> list[Finding]:
    findings: list[Finding] = []
    for mod in modules:
        for entry in worker_entries(mod):
            findings.extend(_check_worker(project, entry))
    # Deduplicate (several entries can reach the same helper).
    seen: set[tuple] = set()
    out: list[Finding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        key = (f.rule, f.path, f.line)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out
