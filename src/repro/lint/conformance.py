"""Pass 2: AlgorithmSpec conformance checking.

Every :class:`~repro.api.registry.AlgorithmSpec` makes claims about
its runner — in-placeness, determinism, obliviousness, scan-kernel
purity, NULL tolerance — that downstream code (the PR 4 optimizer,
the service layer, the adversary harness) trusts without checking.
This pass cross-validates each claim against the runner's *source*,
using the taint pass's call summaries:

* ``SPEC201``/``SPEC202`` — declared in-placeness vs. whether the
  input array is actually written (directly or via a callee);
* ``SPEC203``/``SPEC204`` — ``randomized=False`` vs. reachable
  ``LasVegasFailure`` raises and RNG draws (``draws_randomness=True``
  metadata legitimizes PRF-key setup that is not Las Vegas retry);
* ``SPEC205`` — ``oblivious=True`` vs. Pass-1 findings anywhere in
  the runner's reachable code;
* ``SPEC206`` — ``fusible_scan`` kernels must not mutate their
  blocks or touch the machine;
* ``SPEC207`` — a ``null_tolerant=False`` variant of a null-tolerant
  or padded spec that never inspects the NULL sentinel;
* ``SPEC208`` — ``lint_public`` metadata entries need justifications.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.model import FunctionInfo, Project
from repro.lint.taint import analyze_function

__all__ = ["check_specs", "reachable", "runner_info"]

#: Parameter names that denote the machine, not the input array.
_MACHINE_PARAMS = {"machine", "m", "em", "self", "cls"}


def runner_info(project: Project, runner) -> FunctionInfo | None:
    """Map a registered runner callable back to its FunctionInfo."""
    fn = inspect.unwrap(runner)
    while not hasattr(fn, "__code__") and hasattr(fn, "func"):
        fn = fn.func  # functools.partial
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    path = Path(code.co_filename)
    qual = fn.__qualname__.replace(".<locals>", "")
    for mod in project.modules.values():
        if mod.path.name == path.name and str(mod.path) == str(path):
            return mod.functions.get(qual)
    return None


def reachable(project: Project, root: FunctionInfo) -> list[FunctionInfo]:
    """BFS closure over statically-resolvable calls."""
    seen: dict[str, FunctionInfo] = {root.qualname: root}
    queue = [root]
    while queue:
        func = queue.pop()
        scope = func.qualname[len(func.module.dotted) + 1 :]
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            callee = project.resolve_call(func.module, node.func, scope=scope)
            if callee is not None and callee.qualname not in seen:
                seen[callee.qualname] = callee
                queue.append(callee)
    return list(seen.values())


def _input_param(func: FunctionInfo) -> str | None:
    for p in func.params:
        if p not in _MACHINE_PARAMS and not p.startswith("_"):
            return p
    return None


def check_specs(project: Project, specs: dict) -> list[Finding]:
    findings: list[Finding] = []
    # Variant names reachable from padded/null-tolerant parents.
    padded_variants: set[str] = set()
    for spec in specs.values():
        if getattr(spec, "null_tolerant", False) or getattr(
            spec, "padded_output", False
        ):
            padded_variants.update(getattr(spec, "variants", ()) or ())

    for name, spec in sorted(specs.items()):
        runner = getattr(spec, "runner", None)
        info = runner_info(project, runner) if runner is not None else None
        if info is None:
            continue
        loc = (info.module.relpath, info.line)
        s = info.summary

        in_place = bool(getattr(spec, "in_place", False))
        input_param = _input_param(info)
        writes_input = input_param is not None and input_param in s.writes_params
        if not in_place and writes_input:
            findings.append(
                Finding(
                    rule="SPEC201",
                    path=loc[0],
                    line=loc[1],
                    message=(
                        f"spec '{name}' declares in_place=False but runner "
                        f"'{info.name}' writes its input array "
                        f"'{input_param}'"
                    ),
                )
            )
        if in_place and input_param is not None and not writes_input:
            findings.append(
                Finding(
                    rule="SPEC202",
                    path=loc[0],
                    line=loc[1],
                    message=(
                        f"spec '{name}' declares in_place=True but runner "
                        f"'{info.name}' never writes its input array "
                        f"'{input_param}' (stale declaration)"
                    ),
                )
            )

        if not getattr(spec, "randomized", False):
            if s.raises_lasvegas:
                findings.append(
                    Finding(
                        rule="SPEC203",
                        path=loc[0],
                        line=loc[1],
                        message=(
                            f"spec '{name}' declares randomized=False but a "
                            "LasVegasFailure raise is reachable from runner "
                            f"'{info.name}'"
                        ),
                    )
                )
            if s.uses_rng and not getattr(spec, "draws_randomness", False):
                findings.append(
                    Finding(
                        rule="SPEC204",
                        path=loc[0],
                        line=loc[1],
                        message=(
                            f"spec '{name}' declares randomized=False but "
                            f"runner '{info.name}' draws from the RNG "
                            "(set draws_randomness=True if the draws are "
                            "setup keys, not Las Vegas retries)"
                        ),
                    )
                )

        if getattr(spec, "oblivious", False):
            bad: list[Finding] = []
            for func in reachable(project, info):
                _, fnd = analyze_function(project=project, func=func, report=True)
                bad.extend(fnd)
            if bad:
                first = min(bad, key=lambda f: (f.path, f.line))
                findings.append(
                    Finding(
                        rule="SPEC205",
                        path=loc[0],
                        line=loc[1],
                        message=(
                            f"spec '{name}' declares oblivious=True but its "
                            f"reachable code has {len(bad)} taint finding(s), "
                            f"first at {first.path}:{first.line} ({first.rule})"
                        ),
                    )
                )

        if getattr(spec, "fusible_scan", False):
            kernel = getattr(spec, "scan_kernel", None)
            kinfo = runner_info(project, kernel) if kernel is not None else None
            if kinfo is not None and (
                kinfo.summary.does_io or kinfo.summary.writes_params
            ):
                what = (
                    "performs machine I/O"
                    if kinfo.summary.does_io
                    else "mutates parameter(s) "
                    + ", ".join(sorted(kinfo.summary.writes_params))
                )
                findings.append(
                    Finding(
                        rule="SPEC206",
                        path=kinfo.module.relpath,
                        line=kinfo.line,
                        message=(
                            f"fusible_scan kernel '{kinfo.name}' of spec "
                            f"'{name}' {what}; kernels must be pure"
                        ),
                    )
                )

        if (
            not getattr(spec, "null_tolerant", True)
            and name in padded_variants
            and not s.touches_null
        ):
            findings.append(
                Finding(
                    rule="SPEC207",
                    path=loc[0],
                    line=loc[1],
                    message=(
                        f"spec '{name}' declares null_tolerant=False, is a "
                        "variant of a padded/null-tolerant spec, yet runner "
                        f"'{info.name}' never tests the NULL sentinel "
                        "(NULL_KEY / is_empty / occupancy)"
                    ),
                )
            )

        for entry in getattr(spec, "lint_public", ()) or ():
            expr, just = (entry + ("",))[:2] if isinstance(entry, tuple) else (entry, "")
            if not str(just).strip():
                findings.append(
                    Finding(
                        rule="SPEC208",
                        path=loc[0],
                        line=loc[1],
                        message=(
                            f"spec '{name}' lint_public entry "
                            f"{str(expr)!r} has no justification"
                        ),
                    )
                )
    return findings
