"""Finding and rule definitions for the static obliviousness linter.

Every rule has a stable ID so CI baselines, pragmas and the JSON
artifact can refer to findings without depending on message wording.
Rule families mirror the three analysis passes:

* ``OBL1xx`` — Pass 1, taint/obliviousness (:mod:`repro.lint.taint`);
* ``SPEC2xx`` — Pass 2, :class:`~repro.api.registry.AlgorithmSpec`
  conformance (:mod:`repro.lint.conformance`);
* ``PAR3xx`` — Pass 3, parallel-safety of worker-reachable code
  (:mod:`repro.lint.parallel_safety`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "RULES"]

#: Rule ID -> one-line description (the linter's vocabulary).
RULES: dict[str, str] = {
    "OBL101": "data-tainted branch condition guards observable effects "
    "(I/O, allocation, or an abort)",
    "OBL102": "data-tainted expression used as an index, range, length or "
    "array operand of an I/O or allocation call",
    "OBL103": "data-tainted loop bound or iterable guards observable effects",
    "OBL104": "malformed oblint pragma or missing justification string",
    "OBL105": "unused oblint pragma (matched no finding and sanitized "
    "no assignment)",
    "SPEC201": "runner mutates its input array but the spec declares "
    "in_place=False",
    "SPEC202": "spec declares in_place=True but the runner never writes "
    "its input array",
    "SPEC203": "spec declares randomized=False but a LasVegasFailure raise "
    "is reachable from the runner",
    "SPEC204": "spec declares randomized=False (and not draws_randomness) "
    "but the runner draws from the per-attempt RNG",
    "SPEC205": "spec declares oblivious=True but the runner's reachable "
    "code has Pass-1 taint findings",
    "SPEC206": "fusible_scan kernel is impure: it mutates its input blocks "
    "or performs machine I/O",
    "SPEC207": "spec declares null_tolerant=False, is reachable from padded "
    "layouts via a null-tolerant spec's variants, yet never tests "
    "the NULL sentinel",
    "SPEC208": "spec lint_public metadata entry carries no justification",
    "PAR301": "worker-reachable code mutates shared engine/machine "
    "accounting state (counters stay in the calling thread)",
    "PAR302": "worker-reachable code invokes epilogue APIs (trace rows, "
    "ciphertext versions, io_observer) that must stay sequential",
    "PAR303": "worker-reachable code calls machine I/O entry points or "
    "storage-ledger APIs (workers only move bytes)",
}


@dataclass(frozen=True)
class Finding:
    """One linter finding.

    ``chain`` is the taint chain (or call chain) that led to the
    finding, innermost origin first — e.g. ``("payload read at
    external_merge_sort.py:80", "heap")``.  ``expected`` marks findings
    the repo deliberately keeps (the non-oblivious baselines); strict
    mode fails only on unexpected findings.
    """

    rule: str
    path: str
    line: int
    message: str
    chain: tuple[str, ...] = field(default_factory=tuple)
    expected: bool = False

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown rule ID {self.rule!r}")

    def format(self) -> str:
        tag = " [expected]" if self.expected else ""
        text = f"{self.path}:{self.line}: {self.rule}{tag} {self.message}"
        if self.chain:
            text += f"  (chain: {' -> '.join(self.chain)})"
        return text

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "chain": list(self.chain),
            "expected": self.expected,
        }
