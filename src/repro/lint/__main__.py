"""CLI for the static obliviousness linter.

Exit status: 0 when clean (strict mode additionally requires the
expected merge-sort baseline findings to still fire — their absence
means the analyzer regressed, not that the baseline became oblivious);
1 on unexpected findings; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.findings import RULES
from repro.lint.runner import run_lint


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static obliviousness linter (taint, spec "
        "conformance, parallel-safety).",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="package directory to analyze (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any unexpected finding or if the expected "
        "baseline findings disappear",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="list rule IDs and exit",
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule, text in sorted(RULES.items()):
            print(f"{rule}: {text}")
        return 0

    root = Path(args.root).resolve() if args.root else None
    report = run_lint(root)

    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        for f in report.findings:
            print(f.format())
        print(
            f"-- {len(report.findings)} finding(s): "
            f"{len(report.expected)} expected, "
            f"{len(report.unexpected)} unexpected; "
            f"{report.pragma_count} pragma(s), "
            f"{report.lint_public_count} lint_public entr(ies)."
        )

    if args.strict:
        if report.unexpected:
            print(
                f"strict: {len(report.unexpected)} unexpected finding(s)",
                file=sys.stderr,
            )
            return 1
        if not report.merge_sort_flagged():
            print(
                "strict: expected merge-sort baseline findings are gone — "
                "the analyzer lost its teeth",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
