"""``# oblint:`` pragma parsing.

A pragma declares a deliberately-public quantity and MUST carry a
justification string::

    x = int(counts.sum())  # oblint: public(x) -- sizes of the padded
                           # layout are fixed by (n, B), Lemma 4.

Accepted separators between the expression and the justification are
an em dash (``—``), ``--`` or ``:``.  Pragmas attach to the physical
line their comment starts on; the taint pass consults them in two
ways:

* a pragma on an assignment line sanitizes the assigned names;
* a pragma whose line falls inside a reported expression's span
  suppresses the finding.

A second form, ``# oblint: nonoblivious -- <justification>``, placed
on a ``def`` line (or its docstring block), declares the *whole
function* a deliberate non-oblivious opt-out — the moral equivalent of
living in ``baselines/`` — e.g. the IBLT plain peel that callers only
reach with ``oblivious_list=False``.

Malformed pragmas (no justification, unparseable shape) become
``OBL104`` findings; pragmas that never matched anything become
``OBL105`` so dead suppressions cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding

__all__ = ["Pragma", "PragmaTable", "parse_pragmas"]

_PRAGMA_RE = re.compile(r"#\s*oblint:\s*(?P<body>.*)$")
_PUBLIC_RE = re.compile(
    r"public\s*\(\s*(?P<expr>.*?)\s*\)\s*(?:—|--|:)\s*(?P<just>.*)$"
)
_NONOBLIVIOUS_RE = re.compile(
    r"nonoblivious\s*(?:\(\s*\))?\s*(?:—|--|:)\s*(?P<just>.*)$"
)


@dataclass
class Pragma:
    path: str
    line: int
    expr: str
    justification: str
    kind: str = "public"
    used: bool = False

    @property
    def names(self) -> tuple[str, ...]:
        """Bare names mentioned in the pragma expression."""
        try:
            tree = ast.parse(self.expr, mode="eval")
        except SyntaxError:
            return ()
        return tuple(
            sorted({n.id for n in ast.walk(tree) if isinstance(n, ast.Name)})
        )


@dataclass
class PragmaTable:
    """All pragmas of one module, keyed by line, plus parse errors."""

    path: str
    by_line: dict[int, Pragma] = field(default_factory=dict)
    errors: list[Finding] = field(default_factory=list)

    def covering(self, lineno: int, end_lineno: int | None = None) -> Pragma | None:
        """Pragma whose line falls within ``[lineno, end_lineno]``."""
        for line in range(lineno, (end_lineno or lineno) + 1):
            pragma = self.by_line.get(line)
            if pragma is not None:
                return pragma
        return None

    def suppresses(self, lineno: int, end_lineno: int | None = None) -> bool:
        pragma = self.covering(lineno, end_lineno)
        if pragma is None:
            return False
        pragma.used = True
        return True

    def unused_findings(self) -> list[Finding]:
        return [
            Finding(
                rule="OBL105",
                path=self.path,
                line=p.line,
                message=f"pragma {p.kind}({p.expr}) matched nothing",
            )
            for p in self.by_line.values()
            if not p.used
        ]


def parse_pragmas(path: str, source: str) -> PragmaTable:
    table = PragmaTable(path=path)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        return table
    for line, text in comments:
        m = _PRAGMA_RE.search(text)
        if m is None:
            continue
        body = m.group("body").strip()
        nm = _NONOBLIVIOUS_RE.match(body)
        if nm is not None:
            if not nm.group("just").strip():
                table.errors.append(
                    Finding(
                        rule="OBL104",
                        path=path,
                        line=line,
                        message="nonoblivious pragma needs a justification "
                        "('# oblint: nonoblivious -- why')",
                    )
                )
                continue
            table.by_line[line] = Pragma(
                path=path,
                line=line,
                expr="",
                justification=nm.group("just").strip(),
                kind="nonoblivious",
            )
            continue
        pm = _PUBLIC_RE.match(body)
        if pm is None or not pm.group("just").strip():
            table.errors.append(
                Finding(
                    rule="OBL104",
                    path=path,
                    line=line,
                    message=(
                        "pragma must have the form "
                        "'# oblint: public(expr) -- justification' "
                        f"(got {body!r})"
                    ),
                )
            )
            continue
        table.by_line[line] = Pragma(
            path=path,
            line=line,
            expr=pm.group("expr").strip(),
            justification=pm.group("just").strip(),
        )
    return table
