"""Pass 1: intraprocedural taint analysis with call summaries.

The adversary in the paper's model observes the *I/O sequence* — which
blocks are read or written, on which arrays, and when arrays are
allocated or freed.  Client-side (in-cache) computation is invisible.
A value is *tainted* when it derives from block payloads the machine
returned (``read_many`` results, ``io_rounds`` read streams, gathered
record columns).  The walker reports taint flowing into:

* ``OBL101`` — an ``if``/``while``/``assert`` condition that guards
  observable effects (machine I/O, allocation, or a raise);
* ``OBL102`` — an index, range, count or array operand of a machine
  I/O or allocation call;
* ``OBL103`` — a loop bound or iterable whose body has effects.

Data-dependent branches whose branches are pure in-cache computation
are *not* violations — the adversary cannot see them — so conditions
only fire when the guarded subtree has effects.  Public quantities
(model parameters ``n``/``M``/``B``, array metadata, RNG draws, seeds)
are sanitized structurally; deliberate declassifications use the
``# oblint: public(expr) -- justification`` pragma.

Every function is analyzed with its parameters seeded with symbolic
``param:<name>`` origins.  Findings whose chain contains a concrete
``payload:`` origin are reported; findings reachable only through a
parameter become :class:`~repro.lint.model.SinkRecord` entries in the
function's summary and are re-checked at every call site — a
caller passing payload-tainted data into such a parameter gets the
finding at the call line, with the chain pointing into the callee.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.findings import Finding
from repro.lint.model import FunctionInfo, Project, SinkRecord, Summary

__all__ = ["MACHINE_OPS", "TaintWalker", "compute_summaries", "analyze_function"]


@dataclass(frozen=True)
class OpSpec:
    """Sink/write/source positions of one machine entry point."""

    sinks: tuple[int, ...] = ()
    arrays: tuple[int, ...] = ()
    writes: tuple[int, ...] = ()
    payload: bool = False


#: Machine/EMArray entry points, dispatched by attribute name (and
#: arity for ``read``/``write``, which ORAM frontends reuse with the
#: index hidden by design).
MACHINE_OPS: dict[str, OpSpec] = {
    "alloc": OpSpec(sinks=(0,)),
    "alloc_cells": OpSpec(sinks=(0,)),
    "free": OpSpec(arrays=(0,)),
    "read_many": OpSpec(sinks=(1,), arrays=(0,), payload=True),
    "write_many": OpSpec(sinks=(1,), arrays=(0,), writes=(0,)),
    "copy_many": OpSpec(sinks=(1, 3), arrays=(0, 2), writes=(2,)),
    "swap_many": OpSpec(sinks=(1, 2), arrays=(0,), writes=(0,)),
    "read_range": OpSpec(sinks=(1, 2), arrays=(0,), payload=True),
    "write_range": OpSpec(sinks=(1,), arrays=(0,), writes=(0,)),
    "gather": OpSpec(sinks=(1,), arrays=(0,), payload=True),
    "scatter": OpSpec(sinks=(1,), arrays=(0,), writes=(0,)),
    "extract_records": OpSpec(arrays=(0,), payload=True),
    "load_records": OpSpec(),
    "begin_chunked_load": OpSpec(sinks=(0,)),
    "load_chunk": OpSpec(arrays=(0,)),
    "stage_records": OpSpec(),
    "repack_resident": OpSpec(arrays=(0,)),
    "load_flat": OpSpec(),
    "raw": OpSpec(payload=True),
    "flat": OpSpec(payload=True),
    "nonempty": OpSpec(payload=True),
    "io_rounds": OpSpec(payload=True),  # steps handled specially
}

#: Attributes whose value is a public model parameter regardless of
#: the object it hangs off (EMMachine/EMArray/engine geometry).
#: ``array`` is the EMArray *handle* inside result carriers like
#: ConsolidationResult: handles are plan structure (their ids already
#: appear in the trace), only payload contents are secret.
PUBLIC_ATTRS = {
    "B",
    "M",
    "m",
    "array",
    "array_id",
    "capacity_blocks",
    "min_blocks",
    "mode",
    "num_blocks",
    "num_cells",
    "workers",
}

#: ``x.append(v)`` / ``x.push(v)``-style receiver mutators: the
#: receiver inherits the argument origins (how ``heap`` gets tainted
#: in the merge-sort baseline).
_MUTATOR_ATTRS = {"append", "extend", "add", "insert", "update", "setdefault"}
#: ``heapq.heappush(heap, item)``-style arg-0 mutators.
_ARG0_MUTATORS = {"heappush", "heappushpop", "heapify"}

#: Null-sentinel vocabulary for SPEC207.
_NULL_NAMES = {"NULL_KEY", "is_empty", "occupancy"}

_EMPTY: frozenset = frozenset()


def _terminal_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Call):
        return _terminal_name(expr.func)
    return None


def _is_rng_call(func: ast.expr) -> bool:
    name = _terminal_name(func)
    if name and (name == "rng" or name.endswith("rng") or name == "default_rng"):
        return True
    if isinstance(func, ast.Attribute):
        recv = _terminal_name(func.value)
        if recv and (recv == "rng" or recv.endswith("rng") or recv == "random"):
            return True
    return False


def _payload_tokens(origins: frozenset) -> tuple[str, ...]:
    return tuple(sorted(t for t in origins if t.startswith("payload:")))


def _param_tokens(origins: frozenset) -> tuple[str, ...]:
    return tuple(
        sorted(t.split(":", 1)[1] for t in origins if t.startswith("param:"))
    )


def _chain(origins: frozenset) -> tuple[str, ...]:
    toks = sorted(origins)
    toks = [t for t in toks if t.startswith("payload:")] + [
        t for t in toks if not t.startswith("payload:")
    ]
    return tuple(t.replace("payload:", "payload read at ") for t in toks[:4])


class TaintWalker:
    """Analyze one function body, producing a summary and findings."""

    def __init__(
        self,
        func: FunctionInfo,
        project: Project,
        *,
        report: bool = False,
        extra_public: frozenset = frozenset(),
    ) -> None:
        self.func = func
        self.mod = func.module
        self.project = project
        self.report = report
        self.extra_public = extra_public
        self.env: dict[str, frozenset] = {
            p: frozenset({f"param:{p}"}) for p in func.params
        }
        self.env_fields: dict[str, dict[str, frozenset]] = {}
        self.control: list[frozenset] = []
        self.findings: list[Finding] = []
        self.summary = Summary()
        self._sinks: dict[str, set[SinkRecord]] = {}
        # dotted-in-module scope for nested-call resolution
        self._scope = func.qualname[len(func.module.dotted) + 1 :]
        # Function-level nonoblivious opt-out: pragma on the def line
        # or the docstring block preceding the first real statement.
        self.declassified = False
        first = func.node.body[0] if func.node.body else func.node
        pragma = self.mod.pragmas.covering(
            func.node.lineno, getattr(first, "end_lineno", func.node.lineno)
        )
        if pragma is not None and pragma.kind == "nonoblivious":
            pragma.used = True
            self.declassified = True

    # ----------------------------------------------------------- run

    def run(self) -> Summary:
        self.visit_body(self.func.node.body)
        self.summary.param_sinks = {
            p: frozenset(list(s)[:8]) for p, s in self._sinks.items() if s
        }
        return self.summary

    # ------------------------------------------------------ plumbing

    def _control_origins(self) -> frozenset:
        out: frozenset = _EMPTY
        for c in self.control:
            out |= c
        return out

    def _record(
        self, rule: str, node: ast.AST, message: str, origins: frozenset
    ) -> None:
        """Report (payload taint) or summarize (param-only taint) a sink."""
        if self.declassified:
            return
        payload = _payload_tokens(origins)
        params = _param_tokens(origins)
        if payload:
            if self.report:
                if self.mod.pragmas.suppresses(
                    node.lineno, getattr(node, "end_lineno", None)
                ):
                    return
                self.findings.append(
                    Finding(
                        rule=rule,
                        path=self.mod.relpath,
                        line=node.lineno,
                        message=message,
                        chain=_chain(origins),
                    )
                )
        elif params:
            if self.mod.pragmas.covering(
                node.lineno, getattr(node, "end_lineno", None)
            ):
                return
            for p in params:
                self._sinks.setdefault(p, set()).add(
                    SinkRecord(rule=rule, line=node.lineno, message=message)
                )

    def _bind(self, target: ast.expr, origins: frozenset) -> None:
        origins = origins | self._control_origins()
        if isinstance(target, ast.Name):
            self.env[target.id] = origins
            self.env_fields.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, origins)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, origins)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                if base.id in self.func.params:
                    self.summary.writes_params |= {base.id}
                self.env[base.id] = self.env.get(base.id, _EMPTY) | origins
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id in self.env_fields:
                self.env_fields[base.id][target.attr] = origins

    # ----------------------------------------------------- statements

    def visit_body(self, body: list) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        method = getattr(self, f"stmt_{type(stmt).__name__}", None)
        if method is not None:
            method(stmt)
            return
        # Generic: evaluate contained expressions, recurse into bodies.
        for expr in _stmt_exprs(stmt):
            self.origins_of(expr)
        for inner in _stmt_bodies(stmt):
            self.visit_body(inner)

    def stmt_FunctionDef(self, stmt: ast.FunctionDef) -> None:
        pass  # indexed and analyzed separately

    stmt_AsyncFunctionDef = stmt_FunctionDef

    def stmt_ClassDef(self, stmt: ast.ClassDef) -> None:
        pass

    def stmt_Assign(self, stmt: ast.Assign) -> None:
        ctor = self._constructor_fields(stmt)
        origins = self.origins_of(stmt.value)
        for t in stmt.targets:
            self._bind(t, origins)
        if ctor is not None and len(stmt.targets) == 1:
            t = stmt.targets[0]
            if isinstance(t, ast.Name):
                self.env[t.id] = self._control_origins()
                self.env_fields[t.id] = ctor
        self._apply_assignment_pragma(stmt, stmt.targets)

    def stmt_AugAssign(self, stmt: ast.AugAssign) -> None:
        origins = self.origins_of(stmt.value)
        if isinstance(stmt.target, ast.Name):
            origins |= self.env.get(stmt.target.id, _EMPTY)
        self._bind(stmt.target, origins)
        self._apply_assignment_pragma(stmt, [stmt.target])

    def stmt_AnnAssign(self, stmt: ast.AnnAssign) -> None:
        origins = self.origins_of(stmt.value) if stmt.value else _EMPTY
        self._bind(stmt.target, origins)
        self._apply_assignment_pragma(stmt, [stmt.target])

    def stmt_Return(self, stmt: ast.Return) -> None:
        origins = self.origins_of(stmt.value) if stmt.value else _EMPTY
        self.summary.returns |= origins | self._control_origins()

    def stmt_Raise(self, stmt: ast.Raise) -> None:
        self.summary.raises_any = True
        name = None
        if stmt.exc is not None:
            self.origins_of(stmt.exc)
            name = _terminal_name(stmt.exc)
        if name in self.project.lasvegas_names:
            self.summary.raises_lasvegas = True

    def stmt_Assert(self, stmt: ast.Assert) -> None:
        origins = self.origins_of(stmt.test)
        if stmt.msg is not None:
            self.origins_of(stmt.msg)
        self.summary.raises_any = True
        if origins:
            self._record(
                "OBL101",
                stmt,
                "data-tainted assert condition (an assert abort is "
                "adversary-visible)",
                origins,
            )

    def stmt_If(self, stmt: ast.If) -> None:
        origins = self.origins_of(stmt.test)
        sanctioned = self.mod.pragmas.covering(
            stmt.test.lineno, stmt.test.end_lineno
        )
        if sanctioned is not None:
            sanctioned.used = True
            origins = _EMPTY
        if origins and (
            self._has_effects(stmt.body) or self._has_effects(stmt.orelse)
        ):
            self._record(
                "OBL101",
                stmt.test,
                "data-tainted branch condition guards machine I/O, "
                "allocation, or an abort",
                origins,
            )
        self.control.append(origins)
        try:
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        finally:
            self.control.pop()

    def stmt_While(self, stmt: ast.While) -> None:
        origins = self.origins_of(stmt.test)
        sanctioned = self.mod.pragmas.covering(
            stmt.test.lineno, stmt.test.end_lineno
        )
        if sanctioned is not None:
            sanctioned.used = True
            origins = _EMPTY
        if origins and (
            self._has_effects(stmt.body) or self._has_effects(stmt.orelse)
        ):
            self._record(
                "OBL101",
                stmt.test,
                "data-tainted while condition: the iteration count is "
                "adversary-visible when the body performs I/O",
                origins,
            )
        self.control.append(origins)
        try:
            # Two passes: loop-carried taint (a variable tainted at the
            # bottom of the body feeding a sink at the top) needs one
            # extra visit to reach its fixpoint.
            self.visit_body(stmt.body)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        finally:
            self.control.pop()

    def stmt_For(self, stmt: ast.For) -> None:
        it = stmt.iter
        if isinstance(it, ast.Call) and _terminal_name(it.func) == "range":
            origins = _EMPTY
            for a in it.args:
                origins |= self.origins_of(a)
        else:
            origins = self.origins_of(it)
        sanctioned = self.mod.pragmas.covering(it.lineno, it.end_lineno)
        if sanctioned is not None:
            sanctioned.used = True
            origins = _EMPTY
        if origins and (
            self._has_effects(stmt.body) or self._has_effects(stmt.orelse)
        ):
            self._record(
                "OBL103",
                it,
                "data-tainted loop bound/iterable: the trip count is "
                "adversary-visible when the body performs I/O",
                origins,
            )
        self._bind(stmt.target, origins)
        self.control.append(origins)
        try:
            self.visit_body(stmt.body)
            self.visit_body(stmt.body)  # loop-carried taint, see stmt_While
            self.visit_body(stmt.orelse)
        finally:
            self.control.pop()

    def stmt_With(self, stmt: ast.With) -> None:
        for item in stmt.items:
            origins = self.origins_of(item.context_expr)
            if item.optional_vars is not None:
                self._bind(item.optional_vars, origins)
        self.visit_body(stmt.body)

    def stmt_Try(self, stmt: ast.Try) -> None:
        before_lv = self.summary.raises_lasvegas
        before_any = self.summary.raises_any
        self.visit_body(stmt.body)
        caught: set[str] = set()
        for handler in stmt.handlers:
            caught |= _handler_names(handler)
        # A handler for the Las Vegas family (or a broad base that
        # covers it) absorbs the flag raised inside the try body; the
        # handler bodies may of course re-raise and set it again.
        broad = bool(caught & {"Exception", "BaseException", ""})
        if broad or caught & (self.project.lasvegas_names | {"EMError", "ReproError"}):
            self.summary.raises_lasvegas = before_lv
        if broad:
            self.summary.raises_any = before_any
        for handler in stmt.handlers:
            if handler.name:
                self.env[handler.name] = _EMPTY
            self.visit_body(handler.body)
        self.visit_body(stmt.orelse)
        self.visit_body(stmt.finalbody)

    def stmt_Expr(self, stmt: ast.Expr) -> None:
        self.origins_of(stmt.value)

    # ---------------------------------------------------- expressions

    def origins_of(self, expr: ast.expr | None) -> frozenset:
        if expr is None:
            return _EMPTY
        method = getattr(self, f"expr_{type(expr).__name__}", None)
        if method is not None:
            return method(expr)
        out: frozenset = _EMPTY
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                out |= self.origins_of(child)
            elif isinstance(child, ast.comprehension):
                out |= self.origins_of(child.iter)
                self._bind(child.target, self.origins_of(child.iter))
                for cond in child.ifs:
                    out |= self.origins_of(cond)
        return out

    def expr_Constant(self, expr: ast.Constant) -> frozenset:
        return _EMPTY

    def expr_Name(self, expr: ast.Name) -> frozenset:
        if expr.id in self.extra_public:
            return _EMPTY
        if expr.id in _NULL_NAMES:
            self.summary.touches_null = True
        return self.env.get(expr.id, _EMPTY)

    def expr_Lambda(self, expr: ast.Lambda) -> frozenset:
        return _EMPTY

    def expr_Tuple(self, expr: ast.Tuple) -> frozenset:
        # io_rounds step tuples: ("r", arr, idx) / ("w", arr, idx,
        # content).  The content element is written *payload* — it is
        # re-encrypted before hitting storage, so its taint must not
        # leak onto the step structure.
        elts = expr.elts
        if (
            len(elts) >= 3
            and isinstance(elts[0], ast.Constant)
            and elts[0].value in ("r", "w")
        ):
            out = self.origins_of(elts[1]) | self.origins_of(elts[2])
            for extra in elts[3:]:
                self.origins_of(extra)  # still walk for sinks/flags
            return out
        out: frozenset = _EMPTY
        for elt in elts:
            out |= self.origins_of(elt)
        return out

    def expr_NamedExpr(self, expr: ast.NamedExpr) -> frozenset:
        origins = self.origins_of(expr.value)
        self._bind(expr.target, origins)
        return origins | self._control_origins()

    def expr_Attribute(self, expr: ast.Attribute) -> frozenset:
        if expr.attr in PUBLIC_ATTRS:
            return _EMPTY
        if isinstance(expr.value, ast.Name):
            fields = self.env_fields.get(expr.value.id)
            if fields is not None and expr.attr in fields:
                return fields[expr.attr]
        if expr.attr in _NULL_NAMES:
            self.summary.touches_null = True
        return self.origins_of(expr.value)

    def expr_Compare(self, expr: ast.Compare) -> frozenset:
        if any(isinstance(op, (ast.Is, ast.IsNot)) for op in expr.ops):
            # Identity tests compare plan structure (handles, None),
            # never payload contents.
            self.origins_of(expr.left)
            for c in expr.comparators:
                self.origins_of(c)
            return _EMPTY
        out = self.origins_of(expr.left)
        for c in expr.comparators:
            out |= self.origins_of(c)
        return out

    def expr_Call(self, expr: ast.Call) -> frozenset:
        func = expr.func
        name = _terminal_name(func)
        arg_origins = [self.origins_of(a) for a in expr.args]
        kw_origins = {
            kw.arg: self.origins_of(kw.value) for kw in expr.keywords
        }
        all_args: frozenset = _EMPTY
        for o in arg_origins:
            all_args |= o
        for o in kw_origins.values():
            all_args |= o

        if _is_rng_call(func):
            self.summary.uses_rng = True
            return _EMPTY

        if name in _NULL_NAMES:
            self.summary.touches_null = True

        if isinstance(func, ast.Attribute):
            spec = self._machine_spec(func.attr, expr)
            if spec is not None:
                return self._machine_call(expr, func.attr, spec, arg_origins)
            if func.attr in _MUTATOR_ATTRS and isinstance(func.value, ast.Name):
                recv = func.value.id
                self.env[recv] = (
                    self.env.get(recv, _EMPTY) | all_args | self._control_origins()
                )
                return _EMPTY
            if func.attr in _ARG0_MUTATORS and expr.args:
                arg0 = expr.args[0]
                if isinstance(arg0, ast.Name):
                    extra: frozenset = _EMPTY
                    for o in arg_origins[1:]:
                        extra |= o
                    self.env[arg0.id] = (
                        self.env.get(arg0.id, _EMPTY)
                        | extra
                        | self._control_origins()
                    )
                return self.env.get(arg0.id, _EMPTY) if isinstance(arg0, ast.Name) else all_args

        callee = self.project.resolve_call(self.mod, func, scope=self._scope)
        if callee is not None and callee is not self.func:
            return self._summary_call(expr, callee, arg_origins, kw_origins)

        # Unknown call: conservative propagation through arguments.
        return all_args | self.origins_of(func)

    # ------------------------------------------------- call handling

    def _machine_spec(self, attr: str, expr: ast.Call) -> OpSpec | None:
        if attr not in MACHINE_OPS:
            # Arity-dispatched scalar forms: machine.read(arr, i) /
            # machine.write(arr, i, blk) vs ORAM's read(i)/write(i, blk)
            # where the index is hidden by the ORAM construction.
            nargs = len(expr.args) + len(expr.keywords)
            if attr == "read":
                if nargs >= 2:
                    return OpSpec(sinks=(1,), arrays=(0,), payload=True)
                return OpSpec(payload=True)
            if attr == "write":
                if nargs >= 3:
                    return OpSpec(sinks=(1,), arrays=(0,), writes=(0,))
                return OpSpec()
            return None
        return MACHINE_OPS[attr]

    def _machine_call(
        self,
        expr: ast.Call,
        attr: str,
        spec: OpSpec,
        arg_origins: list[frozenset],
    ) -> frozenset:
        self.summary.does_io = True
        if attr == "io_rounds":
            self._check_io_rounds(expr)
            self.summary.reads_payload = True
            return frozenset({f"payload:{self.mod.relpath}:{expr.lineno}"})
        for i in spec.sinks:
            if i < len(arg_origins) and arg_origins[i]:
                self._record(
                    "OBL102",
                    expr,
                    f"data-tainted index/range argument {i} of machine "
                    f"op '{attr}'",
                    arg_origins[i],
                )
        for i in spec.arrays:
            if i < len(arg_origins) and arg_origins[i]:
                self._record(
                    "OBL102",
                    expr,
                    f"data-dependent array operand {i} of machine op "
                    f"'{attr}' (which array is touched leaks data)",
                    arg_origins[i],
                )
        for i in spec.writes:
            if i < len(expr.args):
                arg = expr.args[i]
                if isinstance(arg, ast.Name) and arg.id in self.func.params:
                    self.summary.writes_params |= {arg.id}
        if spec.payload:
            self.summary.reads_payload = True
            return frozenset({f"payload:{self.mod.relpath}:{expr.lineno}"})
        return _EMPTY

    def _check_io_rounds(self, expr: ast.Call) -> None:
        if not expr.args:
            return
        steps = expr.args[0]
        if not isinstance(steps, (ast.List, ast.Tuple)):
            origins = self.origins_of(steps)
            if origins:
                self._record(
                    "OBL102",
                    expr,
                    "data-tainted step list passed to io_rounds",
                    origins,
                )
            return
        for elt in steps.elts:
            if not isinstance(elt, (ast.Tuple, ast.List)) or len(elt.elts) < 3:
                origins = self.origins_of(elt)
                if origins:
                    self._record(
                        "OBL102", elt, "data-tainted io_rounds step", origins
                    )
                continue
            arr_origins = self.origins_of(elt.elts[1])
            if arr_origins:
                self._record(
                    "OBL102",
                    elt.elts[1],
                    "data-dependent array operand in io_rounds step",
                    arr_origins,
                )
            idx_origins = self.origins_of(elt.elts[2])
            if idx_origins:
                self._record(
                    "OBL102",
                    elt.elts[2],
                    "data-tainted index stream in io_rounds step",
                    idx_origins,
                )
            for extra in elt.elts[3:]:
                if not isinstance(extra, ast.Lambda):
                    self.origins_of(extra)
            # write payload callables run in-cache; their results are
            # re-encrypted before hitting storage, so contents are free.

    def _summary_call(
        self,
        expr: ast.Call,
        callee: FunctionInfo,
        arg_origins: list[frozenset],
        kw_origins: dict,
    ) -> frozenset:
        s = callee.summary
        bound: dict[str, frozenset] = {}
        for i, o in enumerate(arg_origins):
            if i < len(callee.params):
                bound[callee.params[i]] = o
        for k, o in kw_origins.items():
            if k in callee.params:
                bound[k] = o

        self.summary.does_io |= s.does_io
        self.summary.uses_rng |= s.uses_rng
        self.summary.raises_lasvegas |= s.raises_lasvegas
        self.summary.raises_any |= s.raises_any
        self.summary.reads_payload |= s.reads_payload
        self.summary.touches_null |= s.touches_null

        # Param sinks inside the callee fire with the caller's args.
        for pname, records in s.param_sinks.items():
            origins = bound.get(pname)
            if not origins:
                continue
            for rec in sorted(records, key=lambda r: (r.rule, r.line)):
                self._record(
                    rec.rule,
                    expr,
                    f"{rec.message} [via {callee.name}() at "
                    f"{callee.module.relpath}:{rec.line}]",
                    origins,
                )

        # Callee writes of our parameters propagate the mutation.
        for pname in s.writes_params:
            idx = callee.params.index(pname) if pname in callee.params else -1
            arg = None
            if 0 <= idx < len(expr.args):
                arg = expr.args[idx]
            else:
                for kw in expr.keywords:
                    if kw.arg == pname:
                        arg = kw.value
            if isinstance(arg, ast.Name) and arg.id in self.func.params:
                self.summary.writes_params |= {arg.id}

        out: frozenset = _EMPTY
        for token in s.returns:
            if token.startswith("param:"):
                out |= bound.get(token.split(":", 1)[1], _EMPTY)
            else:
                out |= {token}
        return out | self._control_origins()

    # ----------------------------------------------------- utilities

    def _apply_assignment_pragma(self, stmt: ast.stmt, targets: list) -> None:
        """A ``public(expr)`` pragma on an assignment sanitizes the
        assigned names it mentions (all of them when the expression
        names none — e.g. ``public(len(order))``)."""
        pragma = self.mod.pragmas.covering(stmt.lineno, stmt.end_lineno)
        if pragma is None or pragma.kind != "public":
            return
        pragma.used = True
        target_names = set()
        for t in targets:
            target_names |= _target_names(t)
        mentioned = set(pragma.names) & target_names
        for name in mentioned or target_names:
            self.env[name] = _EMPTY

    def _constructor_fields(self, stmt: ast.Assign) -> dict | None:
        """Field-sensitive tracking for ``x = SomeDataclass(...)``."""
        value = stmt.value
        if not isinstance(value, ast.Call):
            return None
        name = None
        if isinstance(value.func, ast.Name):
            name = value.func.id
        if name is None:
            return None
        fields = self.project.class_fields_for(self.mod, name)
        if not fields:
            return None
        out: dict[str, frozenset] = {}
        for i, arg in enumerate(value.args):
            if i < len(fields):
                out[fields[i]] = self.origins_of(arg) | self._control_origins()
        for kw in value.keywords:
            if kw.arg in fields:
                out[kw.arg] = self.origins_of(kw.value) | self._control_origins()
        return out

    def _has_effects(self, body: list) -> bool:
        """Does the subtree perform adversary-visible actions?"""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Assert):
                    return True
                if isinstance(node, ast.Call):
                    func = node.func
                    if isinstance(func, ast.Attribute) and (
                        func.attr in MACHINE_OPS or func.attr in ("read", "write")
                    ):
                        return True
                    callee = self.project.resolve_call(
                        self.mod, func, scope=self._scope
                    )
                    if callee is not None and (
                        callee.summary.does_io or callee.summary.raises_any
                    ):
                        return True
        return False


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """Exception class names an ``except`` clause catches ("" = bare)."""
    t = handler.type
    if t is None:
        return {""}
    elts = t.elts if isinstance(t, ast.Tuple) else [t]
    out: set[str] = set()
    for e in elts:
        if isinstance(e, ast.Name):
            out.add(e.id)
        elif isinstance(e, ast.Attribute):
            out.add(e.attr)
    return out


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in target.elts:
            out |= _target_names(elt)
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()


def _stmt_exprs(stmt: ast.stmt):
    for fname, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for v in value:
                if isinstance(v, ast.expr):
                    yield v


def _stmt_bodies(stmt: ast.stmt):
    for fname in ("body", "orelse", "finalbody"):
        value = getattr(stmt, fname, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            yield value


def analyze_function(
    func: FunctionInfo,
    project: Project,
    *,
    report: bool = False,
    extra_public: frozenset = frozenset(),
) -> tuple[Summary, list[Finding]]:
    walker = TaintWalker(
        func, project, report=report, extra_public=extra_public
    )
    summary = walker.run()
    return summary, walker.findings


def compute_summaries(project: Project, max_rounds: int = 16) -> int:
    """Bottom-up fixpoint over all indexed functions.

    Returns the number of rounds taken (useful in tests to assert
    convergence stays cheap).
    """
    funcs = list(project.functions.values())
    for round_no in range(1, max_rounds + 1):
        changed = False
        for func in funcs:
            summary, _ = analyze_function(func, project, report=False)
            if summary.key() != func.summary.key():
                func.summary = summary
                changed = True
        if not changed:
            return round_no
    return max_rounds
