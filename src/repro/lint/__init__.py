"""Static obliviousness linter for the reproduction codebase.

Three passes over the algorithm sources, complementing the *dynamic*
adversary-view harness (which can only witness violations its sampled
inputs happen to trigger):

1. taint/obliviousness — no machine payload value may influence the
   I/O sequence (:mod:`repro.lint.taint`);
2. AlgorithmSpec conformance — declared spec flags must match runner
   source (:mod:`repro.lint.conformance`);
3. parallel-safety — worker shards must not touch sequential-epilogue
   accounting state (:mod:`repro.lint.parallel_safety`).

Run with ``python -m repro.lint [--strict] [--json]``.
"""

from repro.lint.findings import RULES, Finding
from repro.lint.runner import LintReport, run_lint

__all__ = ["Finding", "LintReport", "RULES", "run_lint"]
