"""Project model: parsed modules, function index, call resolution.

The linter never imports the code it analyzes (except Pass 2, which
imports the registry to enumerate specs); everything here is built
from the AST.  A :class:`Project` indexes every function — including
nested ones — under a dotted qualname, records per-module import
aliases so calls resolve across modules, and collects the dataclass
field lists and the ``LasVegasFailure`` exception family that the
taint and conformance passes consult.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.pragmas import PragmaTable, parse_pragmas

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "Summary",
    "SinkRecord",
]


@dataclass(frozen=True, order=True)
class SinkRecord:
    """A sink inside a callee that fires when a parameter is tainted."""

    rule: str
    line: int
    message: str


@dataclass
class Summary:
    """Call summary of one function, computed to fixpoint.

    ``returns`` holds origin tokens (``param:<name>`` / ``payload:...``)
    that may flow into the return value.  ``param_sinks`` maps a
    parameter name to sinks inside this function (or its callees) that
    a tainted argument would reach.  ``writes_params`` lists parameter
    names whose pointed-to array is written (directly via a machine
    write position or transitively through a callee).
    """

    returns: frozenset = frozenset()
    param_sinks: dict = field(default_factory=dict)
    writes_params: frozenset = frozenset()
    does_io: bool = False
    uses_rng: bool = False
    raises_lasvegas: bool = False
    raises_any: bool = False
    reads_payload: bool = False
    touches_null: bool = False

    def key(self) -> tuple:
        return (
            self.returns,
            tuple(sorted((p, tuple(sorted(s))) for p, s in self.param_sinks.items())),
            self.writes_params,
            self.does_io,
            self.uses_rng,
            self.raises_lasvegas,
            self.raises_any,
            self.reads_payload,
            self.touches_null,
        )


@dataclass
class FunctionInfo:
    qualname: str
    module: "ModuleInfo"
    node: ast.FunctionDef
    params: tuple[str, ...]
    summary: Summary = field(default_factory=Summary)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    path: Path
    relpath: str
    dotted: str
    tree: ast.Module
    pragmas: PragmaTable
    #: top-level function name -> FunctionInfo (methods under Class.name)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: local alias -> dotted module ("np" -> "numpy") for ``import x as y``
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local alias -> (dotted module, symbol) for ``from m import s``
    symbol_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: class name -> ordered annotated field names (dataclass-style)
    class_fields: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: class name -> base name list (as written)
    class_bases: dict[str, tuple[str, ...]] = field(default_factory=dict)


def _param_names(node: ast.FunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


class Project:
    """All analyzed modules plus cross-module resolution tables."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}  # dotted -> info
        self.functions: dict[str, FunctionInfo] = {}  # global qualname
        #: exception class names that are LasVegasFailure descendants
        self.lasvegas_names: set[str] = {"LasVegasFailure", "RetryExhausted"}

    # -- loading ---------------------------------------------------

    def add_module(self, path: Path, root: Path) -> ModuleInfo | None:
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError):
            return None
        relpath = str(path.relative_to(root.parent) if root in path.parents or path == root else path)
        dotted = _dotted_name(path, root)
        info = ModuleInfo(
            path=path,
            relpath=relpath,
            dotted=dotted,
            tree=tree,
            pragmas=parse_pragmas(relpath, source),
        )
        self._index_module(info)
        self.modules[dotted] = info
        return info

    def add_tree(self, root: Path) -> None:
        for path in sorted(root.rglob("*.py")):
            self.add_module(path, root)

    def finalize(self) -> None:
        """Resolve the LasVegas exception family transitively."""
        changed = True
        while changed:
            changed = False
            for mod in self.modules.values():
                for cls, bases in mod.class_bases.items():
                    if cls in self.lasvegas_names:
                        continue
                    if any(b in self.lasvegas_names for b in bases):
                        self.lasvegas_names.add(cls)
                        changed = True

    # -- indexing --------------------------------------------------

    def _index_module(self, mod: ModuleInfo) -> None:
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    mod.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(stmt, ast.ImportFrom) and stmt.module:
                for alias in stmt.names:
                    mod.symbol_imports[alias.asname or alias.name] = (
                        stmt.module,
                        alias.name,
                    )
        self._index_body(mod, mod.tree.body, prefix="")

    def _index_body(self, mod: ModuleInfo, body: list, prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                info = FunctionInfo(
                    qualname=f"{mod.dotted}.{qual}",
                    module=mod,
                    node=stmt,
                    params=_param_names(stmt),
                )
                mod.functions[qual] = info
                self.functions[info.qualname] = info
                self._index_body(mod, stmt.body, prefix=f"{qual}.")
            elif isinstance(stmt, ast.ClassDef):
                fields = tuple(
                    t.target.id
                    for t in stmt.body
                    if isinstance(t, ast.AnnAssign) and isinstance(t.target, ast.Name)
                )
                mod.class_fields[stmt.name] = fields
                mod.class_bases[stmt.name] = tuple(
                    b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                    for b in stmt.bases
                )
                self._index_body(mod, stmt.body, prefix=f"{stmt.name}.")

    # -- resolution ------------------------------------------------

    def resolve_call(self, mod: ModuleInfo, func: ast.expr, scope: str = "") -> FunctionInfo | None:
        """Resolve a call target expression to a FunctionInfo, if local.

        ``scope`` is the dotted-in-module prefix of the calling
        function, so nested helpers resolve before module-level names.
        """
        if isinstance(func, ast.Name):
            name = func.id
            if scope:
                parts = scope.split(".")
                for i in range(len(parts), 0, -1):
                    qual = ".".join(parts[:i]) + "." + name
                    if qual in mod.functions:
                        return mod.functions[qual]
            if name in mod.functions:
                return mod.functions[name]
            # Constructor call: resolve ``Cls(...)`` to ``Cls.__init__``.
            if f"{name}.__init__" in mod.functions:
                return mod.functions[f"{name}.__init__"]
            target = mod.symbol_imports.get(name)
            if target:
                src_mod, symbol = target
                other = self.modules.get(src_mod)
                if other and symbol in other.functions:
                    return other.functions[symbol]
                if other and f"{symbol}.__init__" in other.functions:
                    return other.functions[f"{symbol}.__init__"]
                # ``from repro.core import compaction``-style package import
                sub = self.modules.get(f"{src_mod}.{symbol}")
                if sub:
                    return None
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            dotted = mod.module_aliases.get(base)
            if dotted is None and base in mod.symbol_imports:
                src_mod, symbol = mod.symbol_imports[base]
                dotted = f"{src_mod}.{symbol}"
            if dotted:
                other = self.modules.get(dotted)
                if other and func.attr in other.functions:
                    return other.functions[func.attr]
            # self.method() within a class body
            if base == "self" and scope:
                cls = scope.split(".")[0]
                qual = f"{cls}.{func.attr}"
                if qual in mod.functions:
                    return mod.functions[qual]
        return None

    def class_fields_for(self, mod: ModuleInfo, name: str) -> tuple[str, ...] | None:
        if name in mod.class_fields:
            return mod.class_fields[name]
        target = mod.symbol_imports.get(name)
        if target:
            other = self.modules.get(target[0])
            if other and target[1] in other.class_fields:
                return other.class_fields[target[1]]
        return None


def _dotted_name(path: Path, root: Path) -> str:
    """Dotted module name of ``path``; ``root`` is the package dir."""
    try:
        rel = path.relative_to(root.parent)
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)
