"""Lint orchestration: build the project model, run the three passes.

The report scope (where Pass-1 findings are *emitted*) is narrower
than the parse scope (everything under ``src/repro``, so summaries
exist for helpers like ``em/batch.py``): algorithm code in ``core/``,
``networks/``, ``oram/``, ``iblt/``, ``relational/``, ``baselines/``
and the registry.  Findings in ``baselines/`` are the expected,
asserted-on list — the whole point of the external merge-sort baseline
is that its I/O sequence is data-dependent — and strict mode fails
only on findings outside it (or if the expected merge-sort findings
ever disappear, which would mean the analyzer lost its teeth).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.conformance import check_specs
from repro.lint.findings import Finding
from repro.lint.model import Project
from repro.lint.parallel_safety import check_parallel_safety
from repro.lint.taint import analyze_function, compute_summaries

__all__ = ["LintReport", "run_lint"]

#: Dotted-module prefixes where Pass 1 emits findings.
REPORT_SCOPE = (
    "repro.core",
    "repro.networks",
    "repro.oram",
    "repro.iblt",
    "repro.relational",
    "repro.baselines",
    "repro.api.registry",
)

#: Dotted-module prefixes whose findings are the expected baseline.
EXPECTED_SCOPE = ("repro.baselines",)

#: Modules scanned by the parallel-safety pass.
PARALLEL_SCOPE = ("repro.em.parallel", "repro.em.crypto", "repro.em.storage")


@dataclass
class LintReport:
    findings: list[Finding] = field(default_factory=list)
    pragma_count: int = 0
    lint_public_count: int = 0
    summary_rounds: int = 0

    @property
    def expected(self) -> list[Finding]:
        return [f for f in self.findings if f.expected]

    @property
    def unexpected(self) -> list[Finding]:
        return [f for f in self.findings if not f.expected]

    def rule_counts(self) -> dict[str, int]:
        return dict(Counter(f.rule for f in self.findings))

    def merge_sort_flagged(self) -> bool:
        return any(
            "external_merge_sort" in f.path and f.rule.startswith("OBL")
            for f in self.expected
        )

    def strict_ok(self) -> bool:
        return not self.unexpected and self.merge_sort_flagged()

    def as_dict(self) -> dict:
        return {
            "rule_counts": self.rule_counts(),
            "expected": len(self.expected),
            "unexpected": len(self.unexpected),
            "pragmas": self.pragma_count,
            "lint_public_entries": self.lint_public_count,
            "summary_rounds": self.summary_rounds,
            "merge_sort_flagged": self.merge_sort_flagged(),
            "findings": [f.as_dict() for f in self.findings],
        }


def _in_scope(dotted: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        dotted == p or dotted.startswith(p + ".") for p in prefixes
    )


def _registry_metadata() -> tuple[frozenset, int, dict]:
    """Import the registry for spec objects + lint_public sanitizers.

    Returns ``(extra_public_names, lint_public_entry_count, specs)``.
    Import failures degrade to a pure-static run rather than crashing
    the linter.
    """
    try:
        from repro.api import registry
    except Exception:
        return frozenset(), 0, {}
    specs = {name: registry.get(name) for name in registry.names()}
    names: set[str] = set()
    count = 0
    for spec in specs.values():
        for entry in getattr(spec, "lint_public", ()) or ():
            count += 1
            expr = entry[0] if isinstance(entry, tuple) else entry
            names.add(str(expr).split(".")[0])
    return frozenset(names), count, specs


def run_lint(
    root: Path | None = None,
    *,
    spec_pass: bool = True,
    parallel_pass: bool = True,
) -> LintReport:
    if root is None:
        root = Path(__file__).resolve().parents[1]
    report = LintReport()
    project = Project()
    project.add_tree(root)
    project.finalize()
    report.summary_rounds = compute_summaries(project)

    extra_public, lint_public_count, specs = _registry_metadata()
    report.lint_public_count = lint_public_count

    findings: list[Finding] = []
    report_mods = [
        m for m in project.modules.values() if _in_scope(m.dotted, REPORT_SCOPE)
    ]
    for mod in report_mods:
        public = extra_public if mod.dotted == "repro.api.registry" else frozenset()
        for func in mod.functions.values():
            _, fnd = analyze_function(
                func, project, report=True, extra_public=public
            )
            findings.extend(fnd)
        findings.extend(mod.pragmas.errors)
        report.pragma_count += len(mod.pragmas.by_line)

    if spec_pass and specs:
        findings.extend(check_specs(project, specs))

    if parallel_pass:
        par_mods = [
            m
            for m in project.modules.values()
            if _in_scope(m.dotted, PARALLEL_SCOPE)
        ]
        findings.extend(check_parallel_safety(project, par_mods))

    # Unused-pragma findings come last: every pass above may mark use.
    for mod in report_mods:
        findings.extend(mod.pragmas.unused_findings())

    # Deduplicate (the same sink can be reported through two call
    # chains) and mark the expected baseline.
    seen: set[tuple] = set()
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message)):
        key = (f.rule, f.path, f.line, f.message)
        if key in seen:
            continue
        seen.add(key)
        expected = "/baselines/" in f.path or f.path.startswith("repro/baselines")
        if expected and f.rule.startswith("OBL") and f.rule not in ("OBL104", "OBL105"):
            f = Finding(
                rule=f.rule,
                path=f.path,
                line=f.line,
                message=f.message,
                chain=f.chain,
                expected=True,
            )
        report.findings.append(f)
    return report
