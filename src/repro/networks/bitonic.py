"""Bitonic sorting network (Batcher).

Provides the comparator schedule — a sequence of rounds, each a set of
disjoint ``(lo, hi)`` index pairs with all comparators oriented
min-to-``lo`` — and an in-memory sorter applying it.  The schedule for
``n`` keys has ``O(log^2 n)`` rounds of ``n/2`` comparators; it is the
work-horse circuit behind the Lemma-2-style deterministic oblivious sorts
and the ORAM rebuilds.

We generate the *normalized* (monotonically increasing) variant in which
every comparator points the same way, valid for any ``n`` that is a power
of two; non-power-of-two inputs are padded with empties (which sort last,
so padding is harmless).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.em.block import NULL_KEY, RECORD_WIDTH
from repro.networks.comparator import compare_exchange
from repro.util.mathx import is_pow2, next_pow2

__all__ = ["bitonic_pairs", "bitonic_sort"]


def bitonic_pairs(n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield rounds of the normalized bitonic network for ``n`` (power of 2).

    Each yielded round is a pair of index arrays ``(lo, hi)`` with
    ``lo[i] < hi[i]`` and all ``2 * len(lo)`` indices distinct, so a round
    can be applied as one vectorized compare-exchange.
    """
    if not is_pow2(n):
        raise ValueError(f"bitonic network requires a power-of-two size, got {n}")
    idx = np.arange(n)
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            partner = idx ^ j
            if j == k // 2:
                # First round of a merge stage in the normalized network:
                # partner within a k-block mirrors across the block centre.
                block = idx // k
                offset = idx % k
                partner = block * k + (k - 1 - offset)
            mask = idx < partner
            yield idx[mask], partner[mask]
            j //= 2
        k *= 2


def bitonic_sort(records: np.ndarray) -> np.ndarray:
    """Sort a record array with the bitonic network (returns a new array).

    Non-power-of-two inputs are padded with empty cells before the network
    runs and truncated afterwards, preserving length.
    """
    records = np.asarray(records, dtype=np.int64)
    n = len(records)
    if n <= 1:
        return records.copy()
    size = next_pow2(n)
    work = np.full((size, RECORD_WIDTH), 0, dtype=np.int64)
    work[:, 0] = NULL_KEY
    work[:n] = records
    for lo, hi in bitonic_pairs(size):
        compare_exchange(work, lo, hi)
    return work[:n]
