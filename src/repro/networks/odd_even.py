"""Batcher's odd-even mergesort network.

Like the bitonic network this sorts with ``O(log^2 n)`` rounds, but every
comparator is already oriented min-to-lower-index, which makes it the
natural schedule for the *merge-split on runs* construction used by the
Lemma-2-style external oblivious sort (see
:mod:`repro.core.external_sort`): replacing each comparator by an
oblivious merge-split of two sorted runs turns a network sorting ``n``
items into an algorithm sorting ``n`` runs (Knuth, §5.3.4).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.em.block import NULL_KEY, RECORD_WIDTH
from repro.networks.comparator import compare_exchange
from repro.util.mathx import is_pow2, next_pow2

__all__ = ["batcher_pairs", "batcher_sort"]


def batcher_pairs(n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield rounds of Batcher's odd-even mergesort for ``n`` (power of 2).

    Uses the classic iterative formulation; each round's comparators are
    disjoint and all point min-to-``lo``.
    """
    if not is_pow2(n):
        raise ValueError(f"odd-even mergesort requires a power-of-two size, got {n}")
    p = 1
    while p < n:
        k = p
        while k >= 1:
            los: list[int] = []
            his: list[int] = []
            for j in range(k % p, n - k, 2 * k):
                for i in range(min(k, n - j - k)):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        los.append(i + j)
                        his.append(i + j + k)
            if los:
                yield np.asarray(los, dtype=np.int64), np.asarray(his, dtype=np.int64)
            k //= 2
        p *= 2


def batcher_sort(records: np.ndarray) -> np.ndarray:
    """Sort a record array with Batcher's network (returns a new array)."""
    records = np.asarray(records, dtype=np.int64)
    n = len(records)
    if n <= 1:
        return records.copy()
    size = next_pow2(n)
    work = np.full((size, RECORD_WIDTH), 0, dtype=np.int64)
    work[:, 0] = NULL_KEY
    work[:n] = records
    for lo, hi in batcher_pairs(size):
        compare_exchange(work, lo, hi)
    return work[:n]
