"""Randomized Shellsort (Goodrich, SODA 2010 — the paper's reference [23]).

A randomized data-oblivious sorting algorithm running in ``O(n log n)``
time and sorting with very high probability.  The access pattern is
determined entirely by the offset sequence and the client's random
matchings — never by the data — so it serves as the library's randomized
comparator-network baseline.

Structure (following the original paper): for each offset
``o = n/2, n/4, ..., 1`` the array is viewed as consecutive regions of
size ``o`` and we run region compare-exchanges between neighbouring and
near-neighbouring regions (a shaker pass, a pass over regions two apart,
and a brick pass), where each region compare-exchange performs ``c``
random matchings between the two regions.
"""

from __future__ import annotations

import numpy as np

from repro.networks.comparator import compare_exchange

__all__ = ["randomized_shellsort"]


def _compare_regions(
    records: np.ndarray,
    a: int,
    b: int,
    size: int,
    c: int,
    rng: np.random.Generator,
) -> None:
    """Run ``c`` random-matching compare-exchange rounds between the
    regions starting at ``a`` (low side) and ``b`` (high side)."""
    n = len(records)
    lo_idx = np.arange(a, min(a + size, n), dtype=np.int64)
    hi_idx = np.arange(b, min(b + size, n), dtype=np.int64)
    if len(lo_idx) == 0 or len(hi_idx) == 0:
        return
    width = min(len(lo_idx), len(hi_idx))
    for _ in range(c):
        perm = rng.permutation(len(hi_idx))[:width]
        compare_exchange(records, lo_idx[:width], hi_idx[perm])


def randomized_shellsort(
    records: np.ndarray,
    rng: np.random.Generator,
    *,
    c: int = 4,
) -> np.ndarray:
    """Sort ``records`` (returns a new array) with randomized Shellsort.

    ``c`` is the number of random matchings per region compare-exchange;
    the original paper proves w.v.h.p. sorting for a modest constant and
    recommends 4 in practice.
    """
    records = np.asarray(records, dtype=np.int64).copy()
    n = len(records)
    if n <= 1:
        return records
    offset = n // 2
    while offset >= 1:
        # Shaker pass: left-to-right then right-to-left over adjacent regions.
        starts = list(range(0, n - offset, offset))
        for a in starts:
            _compare_regions(records, a, a + offset, offset, c, rng)
        for a in reversed(starts):
            _compare_regions(records, a, a + offset, offset, c, rng)
        # Regions two apart ("extended brick").
        for a in range(0, n - 3 * offset, offset):
            _compare_regions(records, a, a + 3 * offset, offset, c, rng)
        for a in range(0, n - 2 * offset, offset):
            _compare_regions(records, a, a + 2 * offset, offset, c, rng)
        # Brick passes: odd and even neighbour pairs.
        for a in range(offset, n - offset, 2 * offset):
            _compare_regions(records, a, a + offset, offset, c, rng)
        for a in range(0, n - offset, 2 * offset):
            _compare_regions(records, a, a + offset, offset, c, rng)
        offset //= 2
    return records
