"""Sorting and routing networks.

Deterministic comparator networks (bitonic, Batcher odd-even mergesort),
the randomized Shellsort of Goodrich [23], and the butterfly-like
compaction network of Theorem 6 / Figure 1.
"""

from repro.networks.comparator import (
    compare_exchange,
    order_keys,
    records_sorted,
    sort_records,
)
from repro.networks.bitonic import bitonic_pairs, bitonic_sort
from repro.networks.odd_even import batcher_pairs, batcher_sort
from repro.networks.shellsort import randomized_shellsort
from repro.networks.butterfly import (
    ButterflyCollisionError,
    butterfly_compact,
    butterfly_expand,
    butterfly_levels_trace,
    distance_labels,
)

__all__ = [
    "compare_exchange",
    "order_keys",
    "records_sorted",
    "sort_records",
    "bitonic_pairs",
    "bitonic_sort",
    "batcher_pairs",
    "batcher_sort",
    "randomized_shellsort",
    "ButterflyCollisionError",
    "butterfly_compact",
    "butterfly_expand",
    "butterfly_levels_trace",
    "distance_labels",
]
