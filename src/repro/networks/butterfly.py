"""Butterfly-like compaction network (paper §3, Theorem 6, Lemma 5, Figure 1).

The network has ``ceil(log2 n)`` levels; cell ``j`` of level ``L_i`` feeds
cells ``j`` and ``j - 2^i`` of level ``L_{i+1}``.  Each occupied cell
carries a *distance label* ``d_j`` — how far left it must travel for a
tight compaction — and at level ``i`` moves by ``d_j mod 2^{i+1}`` (either
0 or ``2^i``).  Lemma 5 proves no two cells ever collide.

Three views are provided:

* :func:`butterfly_levels_trace` — an in-memory, per-level simulation that
  records every intermediate level.  This regenerates **Figure 1**.
* ``_route_in_memory`` — the same routing collapsed level-by-level, used as
  the cache-resident base case.
* :func:`butterfly_compact` — the external-memory algorithm on block
  arrays.  ``windowed=False`` simulates the circuit one level at a time
  (``O(n log n)`` I/Os); ``windowed=True`` implements the paper's
  windowing optimization — route ``g = Theta(log m)`` levels per scan
  through a sliding window of ``2^g`` cells, then gather the ``2^g``
  independent residue classes and recurse — for ``O(n log_m n)`` I/Os.

:func:`butterfly_expand` runs the network "in reverse" (the remark after
Theorem 6): each element carries a non-decreasing *expansion factor* and
moves right instead of left.
"""

from __future__ import annotations

import numpy as np

from repro.em.block import NULL_KEY, RECORD_WIDTH, is_empty
from repro.em.errors import EMError
from repro.em.machine import EMMachine
from repro.em.storage import EMArray
from repro.util.mathx import ceil_div, ilog2

__all__ = [
    "ButterflyCollisionError",
    "distance_labels",
    "butterfly_levels_trace",
    "butterfly_compact",
    "butterfly_expand",
]


class ButterflyCollisionError(EMError):
    """Two cells were routed to the same slot — impossible for valid labels
    (Lemma 5); raised only on malformed label inputs."""


def distance_labels(occupied: np.ndarray) -> np.ndarray:
    """Compute valid distance labels for a tight compaction.

    ``occupied`` is a boolean mask; the label of the ``r``-th occupied
    cell (0-based) at position ``j`` is ``j - r`` — the number of empty
    cells to its left.  Empty cells get label 0 (ignored by the router).
    """
    occupied = np.asarray(occupied, dtype=bool)
    ranks = np.cumsum(occupied) - 1
    idx = np.arange(len(occupied), dtype=np.int64)
    return np.where(occupied, idx - ranks, 0).astype(np.int64)


def _num_levels(n: int) -> int:
    """Number of network levels for ``n`` cells."""
    if n <= 1:
        return 0
    return ilog2(n - 1) + 1  # ceil(log2 n) for n >= 2


def butterfly_levels_trace(
    occupied: np.ndarray,
) -> list[list[tuple[bool, int]]]:
    """Simulate the network level by level, returning every level's state.

    Each level is a list of ``(occupied, remaining_distance)`` per cell —
    exactly the annotations of the paper's Figure 1.  The first entry is
    level ``L_0``; the last has every remaining distance 0.
    """
    occupied = np.asarray(occupied, dtype=bool)
    n = len(occupied)
    labels = distance_labels(occupied)
    occ = occupied.copy()
    lab = labels.copy()
    trace = [[(bool(o), int(d)) for o, d in zip(occ, lab)]]
    for i in range(_num_levels(n)):
        occ, lab, _ = _route_one_level(occ, lab, None, i)
        trace.append([(bool(o), int(d)) for o, d in zip(occ, lab)])
    return trace


def _route_one_level(
    occ: np.ndarray,
    lab: np.ndarray,
    payload: np.ndarray | None,
    level: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Apply one network level in memory; returns new (occ, lab, payload)."""
    n = len(occ)
    modulus = 1 << (level + 1)
    idx = np.arange(n, dtype=np.int64)
    moves = np.where(occ, lab % modulus, 0)
    dests = idx - moves
    if np.any(dests < 0):
        raise ButterflyCollisionError("a label routed a cell past the left edge")
    new_occ = np.zeros_like(occ)
    new_lab = np.zeros_like(lab)
    new_payload = None if payload is None else np.full_like(payload, 0)
    if new_payload is not None:
        new_payload[..., 0] = NULL_KEY
    src = idx[occ]
    dst = dests[occ]
    uniq, counts = np.unique(dst, return_counts=True)
    if np.any(counts > 1):
        raise ButterflyCollisionError(
            f"collision at level {level}: slots {uniq[counts > 1].tolist()}"
        )
    new_occ[dst] = True
    new_lab[dst] = lab[src] - moves[src]
    if new_payload is not None:
        new_payload[dst] = payload[src]
    return new_occ, new_lab, new_payload


def _route_in_memory(
    occ: np.ndarray,
    lab: np.ndarray,
    payload: np.ndarray,
    levels: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Route ``levels`` network levels entirely in private memory.

    Uses the composite map: after levels ``0..levels-1`` a cell at ``j``
    with label ``d`` (divisible by ``2^0``) lands at ``j - (d mod
    2^levels)`` — the telescoped product of the per-level moves, injective
    by Lemma 5.
    """
    n = len(occ)
    if levels <= 0 or n <= 1:
        return occ.copy(), lab.copy(), payload.copy()
    span = 1 << levels
    idx = np.arange(n, dtype=np.int64)
    moves = np.where(occ, lab % span, 0)
    dests = idx - moves
    if np.any(dests < 0):
        raise ButterflyCollisionError("a label routed a cell past the left edge")
    new_occ = np.zeros_like(occ)
    new_lab = np.zeros_like(lab)
    new_payload = np.full_like(payload, 0)
    new_payload[..., 0] = NULL_KEY
    src = idx[occ]
    dst = dests[occ]
    uniq, counts = np.unique(dst, return_counts=True)
    if np.any(counts > 1):
        raise ButterflyCollisionError(
            f"collision in composite routing: slots {uniq[counts > 1].tolist()}"
        )
    new_occ[dst] = True
    new_lab[dst] = lab[src] - moves[src]
    new_payload[dst] = payload[src]
    return new_occ, new_lab, new_payload


# ---------------------------------------------------------------------------
# External-memory routing
# ---------------------------------------------------------------------------

#: Label block layout: record 0 of the label block for data block ``j``
#: holds ``(occupied_flag, distance)``.


def _write_labels_scan(
    machine: EMMachine,
    A: EMArray,
    occupied_fn,
) -> tuple[EMArray, int]:
    """Scan ``A`` computing distance labels into a parallel label array.

    Returns the label array and the number of occupied blocks.  The scan's
    access pattern (read ``A[j]``, write ``labels[j]``) is fixed.
    """
    n = A.num_blocks
    labels = machine.alloc(n, f"{A.name}.labels")
    rank = 0
    with machine.cache.hold(2):
        for j in range(n):
            block = machine.read(A, j)
            occ = bool(occupied_fn(block))
            lab_block = np.full((machine.B, RECORD_WIDTH), 0, dtype=np.int64)
            lab_block[:, 0] = NULL_KEY
            lab_block[0, 0] = 1 if occ else 0
            lab_block[0, 1] = (j - rank) if occ else 0
            machine.write(labels, j, lab_block)
            if occ:
                rank += 1
    return labels, rank


def _default_occupied(block: np.ndarray) -> bool:
    """A block is occupied when it holds at least one non-empty record."""
    return bool(np.any(~is_empty(block)))


def _route_em_naive(
    machine: EMMachine,
    data: EMArray,
    labels: EMArray,
) -> tuple[EMArray, EMArray]:
    """Simulate the circuit one level at a time (``O(n log n)`` I/Os).

    For each output cell ``j`` of the next level we read both of its
    fan-in cells (``j`` and ``j + 2^i``), decide in cache which occupies
    the output, and write it — the fixed read/write pattern of a circuit
    simulation (the paper's observation that circuit evaluation is
    trivially data-oblivious).
    """
    n = data.num_blocks
    B = machine.B
    cur_d, cur_l = data, labels
    for level in range(_num_levels(n)):
        step = 1 << level
        modulus = step * 2
        nxt_d = machine.alloc(n, f"{data.name}.L{level + 1}")
        nxt_l = machine.alloc(n, f"{data.name}.L{level + 1}.lab")
        with machine.cache.hold(4):
            for j in range(n):
                blk_here = machine.read(cur_d, j)
                lab_here = machine.read(cur_l, j)
                out_blk = np.full((B, RECORD_WIDTH), 0, dtype=np.int64)
                out_blk[:, 0] = NULL_KEY
                out_lab = np.full((B, RECORD_WIDTH), 0, dtype=np.int64)
                out_lab[:, 0] = NULL_KEY
                out_lab[0, 0] = 0
                out_lab[0, 1] = 0
                claimed = False
                if lab_here[0, 0] == 1 and lab_here[0, 1] % modulus == 0:
                    out_blk = blk_here
                    out_lab[0, 0] = 1
                    out_lab[0, 1] = lab_here[0, 1]
                    claimed = True
                if j + step < n:
                    blk_far = machine.read(cur_d, j + step)
                    lab_far = machine.read(cur_l, j + step)
                    if lab_far[0, 0] == 1 and lab_far[0, 1] % modulus == step:
                        if claimed:
                            raise ButterflyCollisionError(
                                f"collision at level {level}, output {j}"
                            )
                        out_blk = blk_far
                        out_lab[0, 0] = 1
                        out_lab[0, 1] = lab_far[0, 1] - step
                machine.write(nxt_d, j, out_blk)
                machine.write(nxt_l, j, out_lab)
        machine.free(cur_d)
        machine.free(cur_l)
        cur_d, cur_l = nxt_d, nxt_l
    return cur_d, cur_l


def _read_label(block: np.ndarray) -> tuple[bool, int]:
    return bool(block[0, 0] == 1), int(block[0, 1])


def _make_label_block(B: int, occ: bool, dist: int) -> np.ndarray:
    block = np.full((B, RECORD_WIDTH), 0, dtype=np.int64)
    block[:, 0] = NULL_KEY
    block[0, 0] = 1 if occ else 0
    block[0, 1] = dist if occ else 0
    return block


def _route_em_windowed(
    machine: EMMachine,
    data: EMArray,
    labels: EMArray,
    *,
    depth: int = 0,
) -> tuple[EMArray, EMArray]:
    """Route all levels using the windowing optimization of Theorem 6.

    Structure (see module docstring): route ``g`` levels in one sliding
    -window scan, gather the ``2^g`` residue classes mod ``2^g`` (which
    are independent for all remaining levels), recurse on each class, and
    scatter back.  I/O cost obeys ``T(n) = O(n) + 2^g T(n / 2^g)`` giving
    ``O(n log_m n)`` total.
    """
    n = data.num_blocks
    B = machine.B
    m = machine.cache.capacity_blocks
    levels = _num_levels(n)
    if levels == 0:
        return data, labels

    # Base case: the whole (sub)problem fits in cache — read everything,
    # route privately, write back.
    if 2 * n + 2 <= m:
        with machine.cache.hold(2 * n):
            payload = np.stack([machine.read(data, j) for j in range(n)])
            labs = [machine.read(labels, j) for j in range(n)]
            occ = np.array([_read_label(lb)[0] for lb in labs], dtype=bool)
            dist = np.array([_read_label(lb)[1] for lb in labs], dtype=np.int64)
            occ2, dist2, payload2 = _route_in_memory(occ, dist, payload, levels)
            for j in range(n):
                machine.write(data, j, payload2[j])
                machine.write(labels, j, _make_label_block(B, bool(occ2[j]), int(dist2[j])))
        return data, labels

    # Window size: need input chunk (2 * S blocks incl. labels) plus the
    # 2S-slot output buffer (4 * S blocks incl. labels) in cache.
    g = max(1, ilog2(max(2, m // 6)))
    g = min(g, levels)
    S = 1 << g

    out_d = machine.alloc(n, f"{data.name}.w{depth}")
    out_l = machine.alloc(n, f"{data.name}.w{depth}.lab")
    # Sliding output buffer of 2S slots covering [origin, origin + 2S).
    buf_payload = np.full((2 * S, B, RECORD_WIDTH), 0, dtype=np.int64)
    buf_payload[:, :, 0] = NULL_KEY
    buf_occ = np.zeros(2 * S, dtype=bool)
    buf_dist = np.zeros(2 * S, dtype=np.int64)

    def flush(origin: int, lo: int, hi: int) -> None:
        """Write finalized region [lo, hi) of the output from the buffer."""
        for j in range(lo, hi):
            slot = j - origin
            machine.write(out_d, j, buf_payload[slot])
            machine.write(
                out_l, j, _make_label_block(B, bool(buf_occ[slot]), int(buf_dist[slot]))
            )

    with machine.cache.hold(min(m, 6 * S)):
        origin = -S  # buffer covers [origin, origin + 2S)
        c = 0
        while c < n:
            chunk = min(S, n - c)
            for local in range(chunk):
                j = c + local
                blk = machine.read(data, j)
                lab = machine.read(labels, j)
                occ, dist = _read_label(lab)
                if not occ:
                    continue
                move = dist % S
                dest = j - move
                slot = dest - origin
                if slot < 0:
                    raise ButterflyCollisionError("cell routed before buffer window")
                if buf_occ[slot]:
                    raise ButterflyCollisionError(
                        f"window collision at output {dest} (level group 0..{g - 1})"
                    )
                buf_occ[slot] = True
                buf_dist[slot] = dist - move
                buf_payload[slot] = blk
            c += chunk
            if c < n:
                # Region [origin, origin + S) can no longer receive cells
                # (future cells sit at >= c and move < S, landing > c - S
                # >= origin + S when chunks are full-size).  Flush it and
                # slide the buffer right by S.
                flush(origin, max(0, origin), origin + S)
                buf_payload[:S] = buf_payload[S:]
                buf_payload[S:, :, 0] = NULL_KEY
                buf_payload[S:, :, 1] = 0
                buf_occ[:S] = buf_occ[S:]
                buf_occ[S:] = False
                buf_dist[:S] = buf_dist[S:]
                buf_dist[S:] = 0
                origin += S
        # Flush everything still buffered: [origin, n).
        flush(origin, max(0, origin), n)
    machine.free(data)
    machine.free(labels)

    if levels <= g:
        return out_d, out_l

    # Gather residue classes mod S: class r holds global indices r, r+S, ...
    # Remaining moves are multiples of S, so classes are independent.
    results: list[tuple[EMArray, EMArray, int]] = []
    for r in range(S):
        size = len(range(r, n, S))
        if size == 0:
            continue
        sub_d = machine.alloc(size, f"{data.name}.c{depth}.{r}")
        sub_l = machine.alloc(size, f"{data.name}.c{depth}.{r}.lab")
        with machine.cache.hold(2):
            for p, j in enumerate(range(r, n, S)):
                machine.write(sub_d, p, machine.read(out_d, j))
                lab = machine.read(out_l, j)
                occ, dist = _read_label(lab)
                # Labels divide by S in gathered coordinates.
                machine.write(sub_l, p, _make_label_block(B, occ, dist // S))
        sub_d, sub_l = _route_em_windowed(machine, sub_d, sub_l, depth=depth + 1)
        results.append((sub_d, sub_l, r))

    # Scatter back.
    with machine.cache.hold(2):
        for sub_d, sub_l, r in results:
            for p, j in enumerate(range(r, n, S)):
                machine.write(out_d, j, machine.read(sub_d, p))
                lab = machine.read(sub_l, p)
                occ, dist = _read_label(lab)
                machine.write(out_l, j, _make_label_block(B, occ, dist * S))
            machine.free(sub_d)
            machine.free(sub_l)
    return out_d, out_l


def butterfly_compact(
    machine: EMMachine,
    A: EMArray,
    *,
    occupied_fn=None,
    occupied_mask=None,
    windowed: bool | str = "auto",
    keep_labels: bool = False,
) -> EMArray | tuple[EMArray, EMArray]:
    """Tight order-preserving compaction of the blocks of ``A`` (Theorem 6).

    Returns a new array of ``A.num_blocks`` blocks in which all occupied
    blocks appear first, in their original relative order, followed by
    empty blocks.  ``A`` itself is consumed conceptually (its contents are
    copied; the array remains allocated and untouched).

    ``occupied_fn`` decides in cache whether a block counts as occupied
    (default: holds any non-empty record).  Alternatively
    ``occupied_mask`` supplies a per-position boolean mask from the
    client's private knowledge (used by failure sweeping); the mask only
    shapes the encrypted routing labels, never the access pattern.
    ``windowed`` selects the ``O(n log_m n)``-I/O windowed router;
    ``False`` selects the per-level circuit simulation (``O(n log n)``
    I/Os).  The default ``"auto"`` picks the windowed router only when
    the cache is big enough for it to actually win: each windowed pass
    costs ~12n I/Os for ``g = log2(m/6)`` levels versus the naive
    router's ~6n per level, so windowing pays off from ``g >= 3``
    (``m >= 48`` blocks).
    """
    n = A.num_blocks
    if windowed == "auto":
        windowed = machine.cache.capacity_blocks >= 48
    if occupied_mask is not None:
        if occupied_fn is not None:
            raise ValueError("pass occupied_fn or occupied_mask, not both")
        if len(occupied_mask) != n:
            raise ValueError(f"mask length {len(occupied_mask)} != {n} blocks")
        mask = [bool(x) for x in occupied_mask]
        position = iter(range(n))

        def occupied_fn(_block: np.ndarray) -> bool:  # noqa: F811
            return mask[next(position)]

    occupied_fn = occupied_fn or _default_occupied
    # Work on a private copy of the data array so A survives.
    work = machine.alloc(n, f"{A.name}.bfly")
    with machine.cache.hold(1):
        for j in range(n):
            machine.write(work, j, machine.read(A, j))
    labels, _ = _write_labels_scan(machine, work, occupied_fn)
    # Both routers consume (free) their input arrays.
    if windowed:
        out_d, out_l = _route_em_windowed(machine, work, labels)
    else:
        out_d, out_l = _route_em_naive(machine, work, labels)
    if keep_labels:
        return out_d, out_l
    machine.free(out_l)
    return out_d


def butterfly_expand(
    machine: EMMachine,
    D: EMArray,
    expansion: np.ndarray,
    n_out: int,
) -> EMArray:
    """Run the network in reverse: expand a compact array (post-Theorem 6).

    ``expansion[p]`` is the number of cells block ``p`` of ``D`` moves to
    the right; the paper requires these factors to form a non-decreasing
    sequence.  Returns an array of ``n_out`` blocks in which block ``p``
    of ``D`` sits at position ``p + expansion[p]``.

    Expansion is the exact inverse of a tight compaction of its own
    output, so we run the forward network's levels in *reverse* order
    (peeling label bits high-to-low instead of low-to-high); the routing
    visits the forward network's collision-free states in reverse, hence
    never collides.  When the whole problem fits in cache the composite
    map ``j -> j + e_j`` is applied directly.
    """
    expansion = np.asarray(expansion, dtype=np.int64)
    nd = D.num_blocks
    if len(expansion) != nd:
        raise ValueError(f"need one expansion factor per block ({nd}), got {len(expansion)}")
    if nd == 0:
        return machine.alloc(n_out, f"{D.name}.expanded")
    if np.any(expansion < 0):
        raise ValueError("expansion factors must be non-negative")
    if np.any(np.diff(expansion) < 0):
        raise ValueError("expansion factors must be non-decreasing")
    if nd - 1 + int(expansion[-1]) >= n_out:
        raise ValueError("expansion factors overflow the output array")
    B = machine.B
    m = machine.cache.capacity_blocks

    # In-cache fast path: composite placement.
    if 2 * n_out + 2 <= m:
        out = machine.alloc(n_out, f"{D.name}.expanded")
        with machine.cache.hold(n_out + nd):
            blocks = [machine.read(D, p) for p in range(nd)]
            placed: dict[int, np.ndarray] = {}
            for p in range(nd):
                placed[p + int(expansion[p])] = blocks[p]
            empty = np.full((B, RECORD_WIDTH), 0, dtype=np.int64)
            empty[:, 0] = NULL_KEY
            for j in range(n_out):
                machine.write(out, j, placed.get(j, empty))
        return out

    # Lay out the initial level: block p of D at position p with its full
    # expansion label; the rest empty.
    cur_d = machine.alloc(n_out, f"{D.name}.exp.L")
    cur_l = machine.alloc(n_out, f"{D.name}.exp.L.lab")
    empty = np.full((B, RECORD_WIDTH), 0, dtype=np.int64)
    empty[:, 0] = NULL_KEY
    with machine.cache.hold(2):
        for j in range(n_out):
            if j < nd:
                machine.write(cur_d, j, machine.read(D, j))
                machine.write(cur_l, j, _make_label_block(B, True, int(expansion[j])))
            else:
                machine.write(cur_d, j, empty)
                machine.write(cur_l, j, _make_label_block(B, False, 0))

    # Reverse the network: apply label bits from high to low, moving right.
    for level in reversed(range(_num_levels(n_out))):
        step = 1 << level
        nxt_d = machine.alloc(n_out, f"{D.name}.exp.L{level}")
        nxt_l = machine.alloc(n_out, f"{D.name}.exp.L{level}.lab")
        with machine.cache.hold(4):
            for j in range(n_out):
                out_blk = empty
                out_occ = False
                out_e = 0
                lab_here = machine.read(cur_l, j)
                blk_here = machine.read(cur_d, j)
                occ, e = _read_label(lab_here)
                if occ and (e >> level) & 1 == 0:
                    out_blk, out_occ, out_e = blk_here, True, e
                if j - step >= 0:
                    lab_far = machine.read(cur_l, j - step)
                    blk_far = machine.read(cur_d, j - step)
                    occ_f, e_f = _read_label(lab_far)
                    if occ_f and (e_f >> level) & 1 == 1:
                        if out_occ:
                            raise ButterflyCollisionError(
                                f"expansion collision at level {level}, output {j}"
                            )
                        out_blk, out_occ, out_e = blk_far, True, e_f
                machine.write(nxt_d, j, out_blk)
                machine.write(nxt_l, j, _make_label_block(B, out_occ, out_e))
        machine.free(cur_d)
        machine.free(cur_l)
        cur_d, cur_l = nxt_d, nxt_l
    machine.free(cur_l)
    return cur_d
