"""Butterfly-like compaction network (paper §3, Theorem 6, Lemma 5, Figure 1).

The network has ``ceil(log2 n)`` levels; cell ``j`` of level ``L_i`` feeds
cells ``j`` and ``j - 2^i`` of level ``L_{i+1}``.  Each occupied cell
carries a *distance label* ``d_j`` — how far left it must travel for a
tight compaction — and at level ``i`` moves by ``d_j mod 2^{i+1}`` (either
0 or ``2^i``).  Lemma 5 proves no two cells ever collide.

Three views are provided:

* :func:`butterfly_levels_trace` — an in-memory, per-level simulation that
  records every intermediate level.  This regenerates **Figure 1**.
* ``_route_in_memory`` — the same routing collapsed level-by-level, used as
  the cache-resident base case.
* :func:`butterfly_compact` — the external-memory algorithm on block
  arrays.  ``windowed=False`` simulates the circuit one level at a time
  (``O(n log n)`` I/Os); ``windowed=True`` implements the paper's
  windowing optimization — route ``g = Theta(log m)`` levels per scan
  through a sliding window of ``2^g`` cells, then gather the ``2^g``
  independent residue classes and recurse — for ``O(n log_m n)`` I/Os.

:func:`butterfly_expand` runs the network "in reverse" (the remark after
Theorem 6): each element carries a non-decreasing *expansion factor* and
moves right instead of left.

All external-memory passes issue their I/O through the machine's batched
engine in cache-sized chunks; each batch emits exactly the event sequence
of the original scalar loop (see :meth:`repro.em.machine.EMMachine.
io_rounds`), so the Theorem 6 obliviousness argument is untouched.
"""

from __future__ import annotations

import numpy as np

from repro.em.batch import empty_blocks, hold_scan, scan_chunks
from repro.em.block import NULL_KEY, RECORD_WIDTH, is_empty
from repro.em.errors import EMError
from repro.em.machine import EMMachine
from repro.em.storage import EMArray
from repro.util.mathx import ceil_div, ilog2

__all__ = [
    "ButterflyCollisionError",
    "distance_labels",
    "butterfly_levels_trace",
    "butterfly_compact",
    "butterfly_expand",
]


class ButterflyCollisionError(EMError):
    """Two cells were routed to the same slot — impossible for valid labels
    (Lemma 5); raised only on malformed label inputs."""


def distance_labels(occupied: np.ndarray) -> np.ndarray:
    """Compute valid distance labels for a tight compaction.

    ``occupied`` is a boolean mask; the label of the ``r``-th occupied
    cell (0-based) at position ``j`` is ``j - r`` — the number of empty
    cells to its left.  Empty cells get label 0 (ignored by the router).
    """
    occupied = np.asarray(occupied, dtype=bool)
    ranks = np.cumsum(occupied) - 1
    idx = np.arange(len(occupied), dtype=np.int64)
    return np.where(occupied, idx - ranks, 0).astype(np.int64)


def _num_levels(n: int) -> int:
    """Number of network levels for ``n`` cells."""
    if n <= 1:
        return 0
    return ilog2(n - 1) + 1  # ceil(log2 n) for n >= 2


def butterfly_levels_trace(
    occupied: np.ndarray,
) -> list[list[tuple[bool, int]]]:
    """Simulate the network level by level, returning every level's state.

    Each level is a list of ``(occupied, remaining_distance)`` per cell —
    exactly the annotations of the paper's Figure 1.  The first entry is
    level ``L_0``; the last has every remaining distance 0.
    """
    occupied = np.asarray(occupied, dtype=bool)
    n = len(occupied)
    labels = distance_labels(occupied)
    occ = occupied.copy()
    lab = labels.copy()
    trace = [[(bool(o), int(d)) for o, d in zip(occ, lab)]]
    for i in range(_num_levels(n)):
        occ, lab, _ = _route_one_level(occ, lab, None, i)
        trace.append([(bool(o), int(d)) for o, d in zip(occ, lab)])
    return trace


def _route_one_level(
    occ: np.ndarray,
    lab: np.ndarray,
    payload: np.ndarray | None,
    level: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Apply one network level in memory; returns new (occ, lab, payload)."""
    n = len(occ)
    modulus = 1 << (level + 1)
    idx = np.arange(n, dtype=np.int64)
    moves = np.where(occ, lab % modulus, 0)
    dests = idx - moves
    if np.any(dests < 0):
        raise ButterflyCollisionError("a label routed a cell past the left edge")
    new_occ = np.zeros_like(occ)
    new_lab = np.zeros_like(lab)
    new_payload = None if payload is None else np.full_like(payload, 0)
    if new_payload is not None:
        new_payload[..., 0] = NULL_KEY
    src = idx[occ]
    dst = dests[occ]
    uniq, counts = np.unique(dst, return_counts=True)
    if np.any(counts > 1):
        raise ButterflyCollisionError(
            f"collision at level {level}: slots {uniq[counts > 1].tolist()}"
        )
    new_occ[dst] = True
    new_lab[dst] = lab[src] - moves[src]
    if new_payload is not None:
        new_payload[dst] = payload[src]
    return new_occ, new_lab, new_payload


def _route_in_memory(
    occ: np.ndarray,
    lab: np.ndarray,
    payload: np.ndarray,
    levels: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Route ``levels`` network levels entirely in private memory.

    Uses the composite map: after levels ``0..levels-1`` a cell at ``j``
    with label ``d`` (divisible by ``2^0``) lands at ``j - (d mod
    2^levels)`` — the telescoped product of the per-level moves, injective
    by Lemma 5.
    """
    n = len(occ)
    if levels <= 0 or n <= 1:
        return occ.copy(), lab.copy(), payload.copy()
    span = 1 << levels
    idx = np.arange(n, dtype=np.int64)
    moves = np.where(occ, lab % span, 0)
    dests = idx - moves
    if np.any(dests < 0):  # oblint: public(dests) -- collision probe: labels are precomputed collision-free; an abort is an invalid plan or a tag-collision tail event
        raise ButterflyCollisionError("a label routed a cell past the left edge")
    new_occ = np.zeros_like(occ)
    new_lab = np.zeros_like(lab)
    new_payload = np.full_like(payload, 0)
    new_payload[..., 0] = NULL_KEY
    src = idx[occ]
    dst = dests[occ]
    counts = np.bincount(dst, minlength=n)
    if np.any(counts > 1):  # oblint: public(counts) -- collision probe: same invalid-plan / tail event as the edge check above
        raise ButterflyCollisionError(
            f"collision in composite routing: slots "
            f"{np.flatnonzero(counts > 1).tolist()}"
        )
    new_occ[dst] = True
    new_lab[dst] = lab[src] - moves[src]
    new_payload[dst] = payload[src]
    return new_occ, new_lab, new_payload


# ---------------------------------------------------------------------------
# External-memory routing
# ---------------------------------------------------------------------------

#: Label block layout: record 0 of the label block for data block ``j``
#: holds ``(occupied_flag, distance)``.


def _make_label_block(B: int, occ: bool, dist: int) -> np.ndarray:
    block = np.full((B, RECORD_WIDTH), 0, dtype=np.int64)
    block[:, 0] = NULL_KEY
    block[0, 0] = 1 if occ else 0
    block[0, 1] = dist if occ else 0
    return block


def _make_label_blocks(B: int, occ: np.ndarray, dist: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_make_label_block`: ``(k, B, 2)`` label blocks."""
    occ = np.asarray(occ, dtype=bool)
    blocks = empty_blocks(len(occ), B)
    blocks[:, 0, 0] = occ
    blocks[:, 0, 1] = np.where(occ, dist, 0)
    return blocks


def _read_label(block: np.ndarray) -> tuple[bool, int]:
    return bool(block[0, 0] == 1), int(block[0, 1])


def _read_labels(blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`_read_label` over ``(k, B, 2)`` label blocks."""
    return blocks[:, 0, 0] == 1, blocks[:, 0, 1]


def _write_labels_scan(
    machine: EMMachine,
    A: EMArray,
    occupied_fn,
    occupied_vec: np.ndarray | None = None,
) -> tuple[EMArray, int]:
    """Scan ``A`` computing distance labels into a parallel label array.

    Returns the label array and the number of occupied blocks.  The scan's
    access pattern (read ``A[j]``, write ``labels[j]``) is fixed.
    ``occupied_vec`` supplies a private per-position occupancy mask
    (failure sweeping); otherwise ``occupied_fn`` (or the default
    any-non-empty-record test) decides per block, in cache.
    """
    n = A.num_blocks
    B = machine.B
    labels = machine.alloc(n, f"{A.name}.labels")
    rank = 0
    for lo, hi in scan_chunks(machine, n, streams=2):
        with hold_scan(machine, 2, hi - lo):
            idx = np.arange(lo, hi, dtype=np.int64)

            def label_blocks(reads, lo=lo, hi=hi, idx=idx):
                nonlocal rank
                blocks = reads[0]
                if occupied_vec is not None:
                    occ = np.asarray(occupied_vec[lo:hi], dtype=bool)
                elif occupied_fn is None or occupied_fn is _default_occupied:
                    occ = np.any(~is_empty(blocks), axis=1)
                else:
                    occ = np.array(
                        [bool(occupied_fn(b)) for b in blocks], dtype=bool
                    )
                ranks_before = rank + np.cumsum(occ) - occ
                rank += int(np.count_nonzero(occ))
                return _make_label_blocks(B, occ, idx - ranks_before)

            machine.io_rounds(
                [("r", A, (lo, hi)), ("w", labels, (lo, hi), label_blocks)]
            )
    return labels, rank


def _default_occupied(block: np.ndarray) -> bool:
    """A block is occupied when it holds at least one non-empty record."""
    return bool(np.any(~is_empty(block)))


def _route_em_naive(
    machine: EMMachine,
    data: EMArray,
    labels: EMArray,
) -> tuple[EMArray, EMArray]:
    """Simulate the circuit one level at a time (``O(n log n)`` I/Os).

    For each output cell ``j`` of the next level we read both of its
    fan-in cells (``j`` and ``j + 2^i``), decide in cache which occupies
    the output, and write it — the fixed read/write pattern of a circuit
    simulation (the paper's observation that circuit evaluation is
    trivially data-oblivious).
    """
    n = data.num_blocks
    B = machine.B
    cur_d, cur_l = data, labels

    def route_chunk(j_idx: np.ndarray, here, far, modulus: int, step: int, level: int):
        """Vectorized routing decision for output cells ``j_idx``."""
        blk_here, lab_here = here
        occ_h, d_h = _read_labels(lab_here)
        claim_h = occ_h & (d_h % modulus == 0)
        k = len(j_idx)
        out_blk = empty_blocks(k, B)
        out_occ = np.zeros(k, dtype=bool)
        out_dist = np.zeros(k, dtype=np.int64)
        out_blk[claim_h] = blk_here[claim_h]
        out_occ[claim_h] = True
        out_dist[claim_h] = d_h[claim_h]
        if far is not None:
            blk_far, lab_far = far
            occ_f, d_f = _read_labels(lab_far)
            claim_f = occ_f & (d_f % modulus == step)
            both = claim_h & claim_f
            if np.any(both):
                raise ButterflyCollisionError(
                    f"collision at level {level}, output {int(j_idx[np.flatnonzero(both)[0]])}"
                )
            out_blk[claim_f] = blk_far[claim_f]
            out_occ[claim_f] = True
            out_dist[claim_f] = d_f[claim_f] - step
        return out_blk, _make_label_blocks(B, out_occ, out_dist)

    for level in range(_num_levels(n)):
        step = 1 << level
        modulus = step * 2
        nxt_d = machine.alloc(n, f"{data.name}.L{level + 1}")
        nxt_l = machine.alloc(n, f"{data.name}.L{level + 1}.lab")
        # Output cells with a far fan-in (j + step < n) read four blocks;
        # the tail reads two.  The scalar order — per-j groups, in j order
        # — is preserved by the round-robin io_rounds interleave.
        split = max(0, n - step)
        for lo, hi in scan_chunks(machine, split, streams=6):
            with hold_scan(machine, 6, hi - lo):
                idx = np.arange(lo, hi, dtype=np.int64)
                out: dict[str, np.ndarray] = {}

                def emit(reads, idx=idx, out=out):
                    out["d"], out["l"] = route_chunk(
                        idx, (reads[0], reads[1]), (reads[2], reads[3]),
                        modulus, step, level,
                    )
                    return out["d"]

                machine.io_rounds(
                    [
                        ("r", cur_d, (lo, hi)),
                        ("r", cur_l, (lo, hi)),
                        ("r", cur_d, (lo + step, hi + step)),
                        ("r", cur_l, (lo + step, hi + step)),
                        ("w", nxt_d, (lo, hi), emit),
                        ("w", nxt_l, (lo, hi), lambda reads, out=out: out["l"]),
                    ]
                )
        for lo, hi in scan_chunks(machine, n - split, streams=4):
            with hold_scan(machine, 4, hi - lo):
                idx = np.arange(split + lo, split + hi, dtype=np.int64)
                out = {}

                def emit_tail(reads, idx=idx, out=out):
                    out["d"], out["l"] = route_chunk(
                        idx, (reads[0], reads[1]), None, modulus, step, level
                    )
                    return out["d"]

                machine.io_rounds(
                    [
                        ("r", cur_d, (split + lo, split + hi)),
                        ("r", cur_l, (split + lo, split + hi)),
                        ("w", nxt_d, (split + lo, split + hi), emit_tail),
                        ("w", nxt_l, (split + lo, split + hi),
                         lambda reads, out=out: out["l"]),
                    ]
                )
        machine.free(cur_d)
        machine.free(cur_l)
        cur_d, cur_l = nxt_d, nxt_l
    return cur_d, cur_l


def _route_em_windowed(
    machine: EMMachine,
    data: EMArray,
    labels: EMArray,
    *,
    depth: int = 0,
) -> tuple[EMArray, EMArray]:
    """Route all levels using the windowing optimization of Theorem 6.

    Structure (see module docstring): route ``g`` levels in one sliding
    -window scan, gather the ``2^g`` residue classes mod ``2^g`` (which
    are independent for all remaining levels), recurse on each class, and
    scatter back.  I/O cost obeys ``T(n) = O(n) + 2^g T(n / 2^g)`` giving
    ``O(n log_m n)`` total.
    """
    n = data.num_blocks
    B = machine.B
    m = machine.cache.capacity_blocks
    levels = _num_levels(n)
    if levels == 0:
        return data, labels

    # Base case: the whole (sub)problem fits in cache — read everything,
    # route privately, write back.
    if 2 * n + 2 <= m:
        with machine.cache.hold(2 * n):
            payload = machine.read_many(data, (0, n))
            labs = machine.read_many(labels, (0, n))
            occ, dist = _read_labels(labs)
            occ2, dist2, payload2 = _route_in_memory(
                occ.astype(bool), dist, payload, levels
            )
            machine.io_rounds(
                [
                    ("w", data, (0, n), payload2),
                    ("w", labels, (0, n), _make_label_blocks(B, occ2, dist2)),
                ]
            )
        return data, labels

    # Window size: need input chunk (2 * S blocks incl. labels) plus the
    # 2S-slot output buffer (4 * S blocks incl. labels) in cache.
    g = max(1, ilog2(max(2, m // 6)))
    g = min(g, levels)
    S = 1 << g

    out_d = machine.alloc(n, f"{data.name}.w{depth}")
    out_l = machine.alloc(n, f"{data.name}.w{depth}.lab")
    # The first g levels compose to the injective map j -> j - (d_j mod S)
    # (Lemma 5).  The paper's sliding-window scan evaluates it with 2S
    # buffered cells, flushing the finalized S-slot region after each
    # window; only the 2S-slot buffer is ever live in private memory.
    # The engine replays the scan's exact event order — [reads of window
    # w][flush of window w-1] per round — fusing groups of windows into
    # strided io_rounds batches.  An S-slot ``carry`` hands the not-yet-
    # flushable leading region from one group to the next, so physical
    # staging stays bounded by the group size, never O(n).
    W = ceil_div(n, S)
    carry_pay = empty_blocks(S, B)
    carry_occ = np.zeros(S, dtype=bool)
    carry_dist = np.zeros(S, dtype=np.int64)

    def route_into(blk, lab, j0, base, img_pay, img_occ, img_dist) -> None:
        """Route gathered cells ``[j0, j0 + len)`` into an image buffer
        covering global positions ``[base, base + len(img_occ))``."""
        occ, dist = _read_labels(lab)
        sel = np.flatnonzero(occ)
        if not len(sel):
            return
        d = dist[sel]
        moves = d % S
        dests = j0 + sel - moves
        if np.any(dests < max(0, base)):  # oblint: public(dests) -- collision probe: aborts only on an invalid routing plan or a tag-collision tail event
            raise ButterflyCollisionError("cell routed before buffer window")
        dests -= base
        if np.any(img_occ[dests]) or np.any(  # oblint: public(dests) -- collision probe: aborts only on an invalid routing plan or a tag-collision tail event
            np.bincount(dests, minlength=len(img_occ))[dests] > 1
        ):
            raise ButterflyCollisionError(
                f"window collision (level group 0..{g - 1})"
            )
        img_occ[dests] = True
        img_dist[dests] = d - moves
        img_pay[dests] = blk[sel]

    with machine.cache.hold(min(m, 6 * S)):
        # Window 0 (its predecessor flush region is empty).  All of its
        # cells land in [0, S) — the initial carry region.
        first = min(S, n)
        blk, lab = machine.io_rounds(
            [("r", data, (0, first)), ("r", labels, (0, first))]
        )
        route_into(blk, lab, 0, 0, carry_pay, carry_occ, carry_dist)
        # Full windows 1..W-2 in groups of _WINDOW_GROUP rounds.  Round w
        # reads window w and flushes region [(w-1)S, wS), which by the
        # window invariant receives no cell from any window > w — so the
        # group can be routed in one shot before its first flush.
        group = max(1, 4096 // S)  # windows per batch: bounded staging
        for wa in range(1, W - 1, group):
            wb = min(wa + group, W - 1)
            k = wb - wa
            base = (wa - 1) * S
            img_pay = empty_blocks((k + 1) * S, B)
            img_occ = np.zeros((k + 1) * S, dtype=bool)
            img_dist = np.zeros((k + 1) * S, dtype=np.int64)
            img_pay[:S] = carry_pay
            img_occ[:S] = carry_occ
            img_dist[:S] = carry_dist
            steps: list = []
            for i in range(S):
                pos = (wa * S + i, wa * S + i + k * S, S)
                steps.append(("r", data, pos))
                steps.append(("r", labels, pos))
            routed: dict[str, bool] = {}

            def ensure_routed(reads, wa=wa, k=k, base=base,
                              img_pay=img_pay, img_occ=img_occ,
                              img_dist=img_dist, routed=routed) -> None:
                if routed:
                    return
                blks = np.stack(
                    [reads[2 * i] for i in range(S)], axis=1
                ).reshape(k * S, B, RECORD_WIDTH)
                labs = np.stack(
                    [reads[2 * i + 1] for i in range(S)], axis=1
                ).reshape(k * S, B, RECORD_WIDTH)
                route_into(blks, labs, wa * S, base, img_pay, img_occ, img_dist)
                routed["done"] = True

            def pay_col(i: int, k=k, img_pay=img_pay, ensure=None):
                def fn(reads):
                    ensure(reads)
                    return img_pay[i : i + k * S : S]
                return fn

            def lab_col(i: int, k=k, img_occ=img_occ, img_dist=img_dist,
                        ensure=None):
                def fn(reads):
                    ensure(reads)
                    sl = slice(i, i + k * S, S)
                    return _make_label_blocks(B, img_occ[sl], img_dist[sl])
                return fn

            for i in range(S):
                fpos = (base + i, base + i + k * S, S)
                steps.append(("w", out_d, fpos, pay_col(i, ensure=ensure_routed)))
                steps.append(("w", out_l, fpos, lab_col(i, ensure=ensure_routed)))
            machine.io_rounds(steps)
            carry_pay = img_pay[k * S :].copy()
            carry_occ = img_occ[k * S :].copy()
            carry_dist = img_dist[k * S :].copy()
        # Last window (possibly partial): its cells land in the carry
        # region [(W-2)S, (W-1)S) or beyond, all within the final flush.
        flo = max(0, (W - 2) * S)
        fin_pay = empty_blocks(n - flo, B)
        fin_occ = np.zeros(n - flo, dtype=bool)
        fin_dist = np.zeros(n - flo, dtype=np.int64)
        span = min(S, n - flo)
        fin_pay[:span] = carry_pay[:span]
        fin_occ[:span] = carry_occ[:span]
        fin_dist[:span] = carry_dist[:span]
        if W >= 2:
            tail_lo = (W - 1) * S
            blk, lab = machine.io_rounds(
                [("r", data, (tail_lo, n)), ("r", labels, (tail_lo, n))]
            )
            route_into(blk, lab, tail_lo, flo, fin_pay, fin_occ, fin_dist)
        # Final flush: everything still buffered, [max(0, (W-2)S), n).
        machine.io_rounds(
            [
                ("w", out_d, (flo, n), fin_pay),
                ("w", out_l, (flo, n),
                 _make_label_blocks(B, fin_occ, fin_dist)),
            ]
        )
    machine.free(data)
    machine.free(labels)

    if levels <= g:
        return out_d, out_l

    # Gather residue classes mod S: class r holds global indices r, r+S, ...
    # Remaining moves are multiples of S, so classes are independent.
    results: list[tuple[EMArray, EMArray, int]] = []
    for r in range(S):
        size = len(range(r, n, S))
        if size == 0:
            continue
        sub_d = machine.alloc(size, f"{data.name}.c{depth}.{r}")
        sub_l = machine.alloc(size, f"{data.name}.c{depth}.{r}.lab")
        for lo, hi in scan_chunks(machine, size, streams=4):
            with hold_scan(machine, 4, hi - lo):
                j = (r + lo * S, r + hi * S, S)

                def divided(reads):
                    occ, dist = _read_labels(reads[2])
                    return _make_label_blocks(B, occ, dist // S)

                machine.io_rounds(
                    [
                        ("r", out_d, j),
                        ("w", sub_d, (lo, hi), lambda reads: reads[0]),
                        ("r", out_l, j),
                        ("w", sub_l, (lo, hi), divided),
                    ]
                )
        sub_d, sub_l = _route_em_windowed(machine, sub_d, sub_l, depth=depth + 1)
        results.append((sub_d, sub_l, r))

    # Scatter back.
    for sub_d, sub_l, r in results:
        size = sub_d.num_blocks
        for lo, hi in scan_chunks(machine, size, streams=4):
            with hold_scan(machine, 4, hi - lo):
                j = (r + lo * S, r + hi * S, S)

                def multiplied(reads):
                    occ, dist = _read_labels(reads[2])
                    return _make_label_blocks(B, occ, dist * S)

                machine.io_rounds(
                    [
                        ("r", sub_d, (lo, hi)),
                        ("w", out_d, j, lambda reads: reads[0]),
                        ("r", sub_l, (lo, hi)),
                        ("w", out_l, j, multiplied),
                    ]
                )
        machine.free(sub_d)
        machine.free(sub_l)
    return out_d, out_l


def butterfly_compact(
    machine: EMMachine,
    A: EMArray,
    *,
    occupied_fn=None,
    occupied_mask=None,
    windowed: bool | str = "auto",
    keep_labels: bool = False,
) -> EMArray | tuple[EMArray, EMArray]:
    """Tight order-preserving compaction of the blocks of ``A`` (Theorem 6).

    Returns a new array of ``A.num_blocks`` blocks in which all occupied
    blocks appear first, in their original relative order, followed by
    empty blocks.  ``A`` itself is consumed conceptually (its contents are
    copied; the array remains allocated and untouched).

    ``occupied_fn`` decides in cache whether a block counts as occupied
    (default: holds any non-empty record).  Alternatively
    ``occupied_mask`` supplies a per-position boolean mask from the
    client's private knowledge (used by failure sweeping); the mask only
    shapes the encrypted routing labels, never the access pattern.
    ``windowed`` selects the ``O(n log_m n)``-I/O windowed router;
    ``False`` selects the per-level circuit simulation (``O(n log n)``
    I/Os).  The default ``"auto"`` picks the windowed router only when
    the cache is big enough for it to actually win: each windowed pass
    costs ~12n I/Os for ``g = log2(m/6)`` levels versus the naive
    router's ~6n per level, so windowing pays off from ``g >= 3``
    (``m >= 48`` blocks).
    """
    n = A.num_blocks
    if windowed == "auto":
        windowed = machine.cache.capacity_blocks >= 48
    occupied_vec = None
    if occupied_mask is not None:
        if occupied_fn is not None:
            raise ValueError("pass occupied_fn or occupied_mask, not both")
        if len(occupied_mask) != n:  # oblint: public(occupied_mask) -- shape validation: aborts only on a malformed mask argument
            raise ValueError(f"mask length {len(occupied_mask)} != {n} blocks")
        occupied_vec = np.asarray(
            [bool(x) for x in occupied_mask], dtype=bool
        )
    # Work on a private copy of the data array so A survives.
    work = machine.alloc(n, f"{A.name}.bfly")
    for lo, hi in scan_chunks(machine, n):
        with hold_scan(machine, 1, hi - lo):
            machine.copy_many(A, (lo, hi), work, (lo, hi))
    labels, _ = _write_labels_scan(
        machine, work, occupied_fn, occupied_vec=occupied_vec
    )
    # Both routers consume (free) their input arrays.
    if windowed:
        out_d, out_l = _route_em_windowed(machine, work, labels)
    else:
        out_d, out_l = _route_em_naive(machine, work, labels)
    if keep_labels:
        return out_d, out_l
    machine.free(out_l)
    return out_d


def butterfly_expand(
    machine: EMMachine,
    D: EMArray,
    expansion: np.ndarray,
    n_out: int,
) -> EMArray:
    """Run the network in reverse: expand a compact array (post-Theorem 6).

    ``expansion[p]`` is the number of cells block ``p`` of ``D`` moves to
    the right; the paper requires these factors to form a non-decreasing
    sequence.  Returns an array of ``n_out`` blocks in which block ``p``
    of ``D`` sits at position ``p + expansion[p]``.

    Expansion is the exact inverse of a tight compaction of its own
    output, so we run the forward network's levels in *reverse* order
    (peeling label bits high-to-low instead of low-to-high); the routing
    visits the forward network's collision-free states in reverse, hence
    never collides.  When the whole problem fits in cache the composite
    map ``j -> j + e_j`` is applied directly.
    """
    expansion = np.asarray(expansion, dtype=np.int64)
    nd = D.num_blocks
    if len(expansion) != nd:  # oblint: public(expansion) -- shape validation: aborts only on a malformed caller argument
        raise ValueError(f"need one expansion factor per block ({nd}), got {len(expansion)}")
    if nd == 0:
        return machine.alloc(n_out, f"{D.name}.expanded")
    if np.any(expansion < 0):  # oblint: public(expansion) -- validation abort: expansion factors are schedule metadata, checked against the contract
        raise ValueError("expansion factors must be non-negative")
    if np.any(np.diff(expansion) < 0):  # oblint: public(expansion) -- validation abort: monotonicity is part of the caller contract
        raise ValueError("expansion factors must be non-decreasing")
    if nd - 1 + int(expansion[-1]) >= n_out:  # oblint: public(expansion) -- validation abort: overflow of the declared output size is a contract violation
        raise ValueError("expansion factors overflow the output array")
    B = machine.B
    m = machine.cache.capacity_blocks

    # In-cache fast path: composite placement.
    if 2 * n_out + 2 <= m:
        out = machine.alloc(n_out, f"{D.name}.expanded")
        with machine.cache.hold(n_out + nd):
            blocks = machine.read_many(D, (0, nd))
            placed = empty_blocks(n_out, B)
            placed[np.arange(nd, dtype=np.int64) + expansion] = blocks
            machine.write_many(out, (0, n_out), placed)
        return out

    # Lay out the initial level: block p of D at position p with its full
    # expansion label; the rest empty.
    cur_d = machine.alloc(n_out, f"{D.name}.exp.L")
    cur_l = machine.alloc(n_out, f"{D.name}.exp.L.lab")
    for lo, hi in scan_chunks(machine, nd, streams=3):
        with hold_scan(machine, 3, hi - lo):
            machine.io_rounds(
                [
                    ("r", D, (lo, hi)),
                    ("w", cur_d, (lo, hi), lambda reads: reads[0]),
                    ("w", cur_l, (lo, hi),
                     _make_label_blocks(B, np.ones(hi - lo, dtype=bool),
                                        expansion[lo:hi])),
                ]
            )
    for lo, hi in scan_chunks(machine, n_out - nd, streams=2):
        with hold_scan(machine, 2, hi - lo):
            k = hi - lo
            machine.io_rounds(
                [
                    ("w", cur_d, (nd + lo, nd + hi), empty_blocks(k, B)),
                    ("w", cur_l, (nd + lo, nd + hi),
                     _make_label_blocks(B, np.zeros(k, dtype=bool),
                                        np.zeros(k, dtype=np.int64))),
                ]
            )

    def expand_chunk(j_idx, here, far, level: int, step: int):
        """Vectorized reverse-routing decision for output cells ``j_idx``."""
        lab_here, blk_here = here
        occ_h, e_h = _read_labels(lab_here)
        take_h = occ_h & ((e_h >> level) & 1 == 0)
        k = len(j_idx)
        out_blk = empty_blocks(k, B)
        out_occ = np.zeros(k, dtype=bool)
        out_e = np.zeros(k, dtype=np.int64)
        out_blk[take_h] = blk_here[take_h]
        out_occ[take_h] = True
        out_e[take_h] = e_h[take_h]
        if far is not None:
            lab_far, blk_far = far
            occ_f, e_f = _read_labels(lab_far)
            take_f = occ_f & ((e_f >> level) & 1 == 1)
            both = take_h & take_f
            if np.any(both):
                raise ButterflyCollisionError(
                    f"expansion collision at level {level}, "
                    f"output {int(j_idx[np.flatnonzero(both)[0]])}"
                )
            out_blk[take_f] = blk_far[take_f]
            out_occ[take_f] = True
            out_e[take_f] = e_f[take_f]
        return out_blk, _make_label_blocks(B, out_occ, out_e)

    # Reverse the network: apply label bits from high to low, moving right.
    for level in reversed(range(_num_levels(n_out))):
        step = 1 << level
        nxt_d = machine.alloc(n_out, f"{D.name}.exp.L{level}")
        nxt_l = machine.alloc(n_out, f"{D.name}.exp.L{level}.lab")
        split = min(step, n_out)
        for lo, hi in scan_chunks(machine, split, streams=4):
            with hold_scan(machine, 4, hi - lo):
                idx = np.arange(lo, hi, dtype=np.int64)
                out: dict[str, np.ndarray] = {}

                def emit_head(reads, idx=idx, out=out):
                    out["d"], out["l"] = expand_chunk(
                        idx, (reads[0], reads[1]), None, level, step
                    )
                    return out["d"]

                machine.io_rounds(
                    [
                        ("r", cur_l, (lo, hi)),
                        ("r", cur_d, (lo, hi)),
                        ("w", nxt_d, (lo, hi), emit_head),
                        ("w", nxt_l, (lo, hi), lambda reads, out=out: out["l"]),
                    ]
                )
        for lo, hi in scan_chunks(machine, n_out - split, streams=6):
            with hold_scan(machine, 6, hi - lo):
                idx = np.arange(split + lo, split + hi, dtype=np.int64)
                out = {}

                def emit_body(reads, idx=idx, out=out):
                    out["d"], out["l"] = expand_chunk(
                        idx, (reads[0], reads[1]), (reads[2], reads[3]),
                        level, step,
                    )
                    return out["d"]

                lo2, hi2 = split + lo, split + hi
                machine.io_rounds(
                    [
                        ("r", cur_l, (lo2, hi2)),
                        ("r", cur_d, (lo2, hi2)),
                        ("r", cur_l, (lo2 - step, hi2 - step)),
                        ("r", cur_d, (lo2 - step, hi2 - step)),
                        ("w", nxt_d, (lo2, hi2), emit_body),
                        ("w", nxt_l, (lo2, hi2), lambda reads, out=out: out["l"]),
                    ]
                )
        machine.free(cur_d)
        machine.free(cur_l)
        cur_d, cur_l = nxt_d, nxt_l
    machine.free(cur_l)
    return cur_d
