"""Compare-exchange primitives over record arrays.

Records are ``(key, value)`` int64 rows; empty cells carry ``NULL_KEY``.
Throughout the library empties sort as ``+inf`` — the convention the paper
uses ("considering empty cells as holding +inf", §4) so that compaction by
sorting pushes real records to the front.

All primitives are vectorized: a whole round of disjoint comparators is
applied in one NumPy operation.
"""

from __future__ import annotations

import numpy as np

from repro.em.block import KEY, NULL_KEY

__all__ = [
    "EMPTY_SORTS_LAST",
    "order_keys",
    "compare_exchange",
    "sort_records",
    "records_sorted",
]

#: The key empties are mapped to for ordering purposes.  Real keys must be
#: strictly smaller; the library-wide contract is keys in
#: ``(NULL_KEY, EMPTY_SORTS_LAST)``.
EMPTY_SORTS_LAST: int = int(np.iinfo(np.int64).max)


def order_keys(records: np.ndarray) -> np.ndarray:
    """Return sort keys for ``records`` with empties mapped to ``+inf``."""
    keys = records[..., KEY]
    return np.where(keys == NULL_KEY, EMPTY_SORTS_LAST, keys)


def compare_exchange(records: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> None:
    """Apply disjoint comparators in place: ensure key[lo] <= key[hi].

    ``lo`` and ``hi`` are parallel index arrays; each pair must be
    disjoint from every other pair (a single network round).  Empty cells
    sort last.
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    keys = order_keys(records)
    swap = keys[lo] > keys[hi]
    if not np.any(swap):
        return
    sl, sh = lo[swap], hi[swap]
    tmp = records[sl].copy()
    records[sl] = records[sh]
    records[sh] = tmp


def sort_records(records: np.ndarray, *, stable: bool = True) -> np.ndarray:
    """Return ``records`` sorted by key (empties last).

    This runs inside the client's private memory, so it is free to use a
    fast comparison sort — in-cache computation is invisible to the
    adversary.  ``stable=True`` preserves the input order of equal keys,
    which the order-preserving compaction paths rely on.
    """
    keys = order_keys(records)
    order = np.argsort(keys, kind="stable" if stable else "quicksort")
    return records[order]


def records_sorted(records: np.ndarray) -> bool:
    """Check that non-empty records appear in non-decreasing key order and
    that no real record follows an empty cell."""
    keys = order_keys(records)
    return bool(np.all(keys[:-1] <= keys[1:])) if len(keys) > 1 else True
