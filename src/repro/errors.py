"""Unified exception hierarchy for the library.

Every error the library raises descends from :class:`ReproError`, so
``except ReproError`` catches anything repro-specific without swallowing
genuine programming errors.  Probabilistic (Las Vegas) failures — the
paper's w.v.h.p. tail events, which callers are *expected* to handle by
retrying with fresh randomness — additionally descend from
:class:`LasVegasFailure`, which carries attempt/seed metadata so retry
loops (notably :class:`repro.api.ObliviousSession`) can report how a
call ultimately failed.

Concrete failure classes keep their historical bases too (for example
:class:`repro.core.compaction.CompactionFailure` is still an
:class:`repro.em.errors.EMError`), so pre-existing ``except`` clauses
continue to work unchanged.
"""

from __future__ import annotations

__all__ = ["ReproError", "LasVegasFailure", "RetryExhausted", "ServiceBusy"]


class ReproError(Exception):
    """Base class for every error defined by this library."""


class LasVegasFailure(ReproError):
    """A randomized algorithm exceeded one of its probabilistic bounds.

    The paper's Las Vegas algorithms fail with probability at most
    ``(N/B)^{-d}`` per attempt; each attempt is individually
    data-oblivious, so the intended recovery is a retry with fresh
    randomness.  ``attempt`` and ``seed`` are filled in by retry drivers
    (:class:`repro.api.ObliviousSession`) when they give up, and are
    ``None`` when the failure came straight from a bare algorithm call.
    """

    def __init__(
        self,
        message: str = "",
        *,
        attempt: int | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(message)
        self.attempt = attempt
        self.seed = seed


class RetryExhausted(LasVegasFailure):
    """A bounded retry budget was spent without a successful attempt.

    Raised by :class:`repro.api.ObliviousSession` with ``attempt`` set to
    the number of attempts made and ``__cause__`` chaining the last
    underlying :class:`LasVegasFailure`.
    """


class ServiceBusy(ReproError):
    """The service declined admission under load.

    Raised by :class:`repro.service.ObliviousService` when a request
    would exceed the configured resident-byte, concurrency or per-tenant
    quota.  ``retry_after`` is the advisory wait (in the service clock's
    seconds) before the token bucket will have refilled enough to admit
    the request; ``reason`` names the exhausted limit.
    """

    def __init__(
        self,
        message: str = "",
        *,
        retry_after: float = 0.0,
        reason: str = "",
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason
