"""Fit measured I/O series to the paper's candidate complexity models.

The experiments produce ``(n, ios)`` series; this module answers the
question every table implicitly asks — *which growth law explains the
measurements best?* — by least-squares fitting the constant of each
candidate model and comparing relative residuals.

Candidate models mirror the paper's bounds (all in blocks ``n = N/B``
with cache ``m = M/B``):

* ``linear``        — ``c * n``                    (Theorems 8, 13, 17)
* ``n_logm``        — ``c * n * log_m n``          (Theorems 6, 21)
* ``n_log``         — ``c * n * log2 n``           (naive butterfly)
* ``n_log2``        — ``c * n * log2^2 (n/m)``     (Lemma 2 sorts)
* ``n_logstar``     — ``c * n * log* n``           (Theorem 9)
* ``quadratic``     — ``c * n^2``                  (sanity anchor)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.util.mathx import log_base, log_star

__all__ = ["io_models", "fit_complexity", "ComplexityFit"]

Model = Callable[[float, float], float]


def io_models(m: int) -> dict[str, Model]:
    """The candidate growth laws, parameterized by the cache size ``m``."""
    return {
        "linear": lambda n, c: c * n,
        "n_logm": lambda n, c: c * n * log_base(n, max(2, m)),
        "n_log": lambda n, c: c * n * max(1.0, math.log2(max(2.0, n))),
        "n_log2": lambda n, c: c
        * n
        * max(1.0, math.log2(max(2.0, n / max(1, m)))) ** 2,
        "n_logstar": lambda n, c: c * n * max(1, log_star(n)),
        "quadratic": lambda n, c: c * n * n,
    }


@dataclass(frozen=True)
class ComplexityFit:
    """Result of fitting one model to a measurement series."""

    model: str
    constant: float
    relative_rmse: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.model}: c={self.constant:.3g}, rel-rmse={self.relative_rmse:.3f}"


def _fit_one(ns: np.ndarray, ios: np.ndarray, fn: Model) -> tuple[float, float]:
    """Least-squares constant for ``ios ~ c * shape(n)`` and the relative
    root-mean-square error of the fit."""
    shape = np.array([fn(float(n), 1.0) for n in ns])
    c = float(np.dot(shape, ios) / np.dot(shape, shape))
    pred = c * shape
    rel = (pred - ios) / ios
    return c, float(np.sqrt(np.mean(rel**2)))


def fit_complexity(
    ns: Sequence[int],
    ios: Sequence[float],
    m: int,
    *,
    models: Sequence[str] | None = None,
) -> list[ComplexityFit]:
    """Fit every candidate model; returns fits sorted best-first.

    A series needs at least three points spanning a factor >= 4 in ``n``
    for the ranking to be meaningful; fewer points raise ``ValueError``.
    """
    ns_arr = np.asarray(ns, dtype=float)
    ios_arr = np.asarray(ios, dtype=float)
    if len(ns_arr) != len(ios_arr):
        raise ValueError("ns and ios must have equal lengths")
    if len(ns_arr) < 3:
        raise ValueError("need at least three measurement points")
    if np.any(ios_arr <= 0) or np.any(ns_arr <= 0):
        raise ValueError("measurements must be positive")
    if ns_arr.max() / ns_arr.min() < 4:
        raise ValueError("series must span at least a 4x range of n")
    candidates = io_models(m)
    if models is not None:
        unknown = set(models) - set(candidates)
        if unknown:
            raise ValueError(f"unknown models: {sorted(unknown)}")
        candidates = {k: v for k, v in candidates.items() if k in models}
    fits = []
    for name, fn in candidates.items():
        c, err = _fit_one(ns_arr, ios_arr, fn)
        fits.append(ComplexityFit(model=name, constant=c, relative_rmse=err))
    fits.sort(key=lambda f: f.relative_rmse)
    return fits
