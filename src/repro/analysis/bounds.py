"""Analytical I/O estimates from the paper's bounds, for ``plan.explain()``.

Each entry maps a registered algorithm's ``cost_model`` to the paper
bound that governs it and to a closed-form block-I/O estimate.  The
paper states the bounds asymptotically; the leading constants here are
calibrated against the implementation (measured at the reference shapes
``(M=64, B=4)`` and ``(M=256, B=8)``, see ``tests/test_api_pipeline.py``)
so that ``explain()`` predicts measured I/Os within a small constant
factor — close enough to compare plans and spot the expensive step
*before* paying for an execution.  The plan optimizer
(:mod:`repro.api.optimizer`) leans on the same estimates to gate its
rewrites, so a bound may also declare a ``feasible`` predicate naming
the model assumptions (wide-block, density) under which its algorithm
applies at all.

All estimates are functions of the input size in blocks ``n = ceil(N/B)``
and the cache size in blocks ``m = M/B``; the ``params`` dict carries the
step's call parameters (``q``, ``k``, …) for bounds that depend on them,
plus ``_r_blocks`` — the public occupied-block capacity ``r`` the
compaction bounds price (injected by the estimate plumbing; defaults to
``n`` when absent, i.e. a dense input).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.compaction import wide_block_ok
from repro.util.mathx import log_base, log_star

__all__ = [
    "IOBound",
    "PAPER_BOUNDS",
    "estimate_ios",
    "estimate_span_ios",
    "span_scale",
    "stream_upload_cost",
]


@dataclass(frozen=True)
class IOBound:
    """One paper bound: provenance, human-readable formula, estimator.

    ``feasible`` (optional) returns whether the algorithm's model
    assumptions hold at ``(n_blocks, m, params)`` — the optimizer never
    substitutes a variant whose bound declares itself infeasible.

    ``parallel_fraction`` is the Brent-style parallelizable share of the
    bound's work under the parallel I/O engine: the fraction of its
    I/Os issued through batched round-robin streams whose data movement
    fans out across workers (rounds stay barriers).  The default 0.9
    reflects the batched hot loops; data-dependent probe sequences
    (ORAM) and setup-only models override it downward."""

    name: str
    source: str  #: where the bound comes from (theorem / lemma)
    formula: str  #: human-readable growth law, in blocks n and cache m
    estimate: Callable[[int, int, Mapping], float]  #: (n_blocks, m, params)
    feasible: Callable[[int, int, Mapping], bool] | None = None
    parallel_fraction: float = 0.9


def _logm(n: int, m: int) -> float:
    """``max(1, log_m n)`` — the recursion depth factor."""
    return max(1.0, log_base(max(2, n), max(2, m)))


def _log2(n: int) -> float:
    return max(1.0, math.log2(max(2, n)))


def _log_star(n: int) -> float:
    """``max(1, log*(n))`` — the Theorem 9 pass factor."""
    return float(max(1, log_star(max(1, n))))


def _r_blocks(n: int, params: Mapping) -> int:
    """Occupied-block capacity ``r`` for the compaction bounds (defaults
    to a dense input, ``r = n``)."""
    return int(params.get("_r_blocks", n))


def _hier_shape(n_cells: int) -> tuple[int, int]:
    """Geometry of :class:`repro.oram.hierarchical.HierarchicalORAM` on
    ``n_cells`` items: ``(s0, L)`` with buffer size ``s0`` and top level
    ``L`` (level ``k`` holds ``reals_k = s0·2^k`` items in a store of
    ``caps_k = 2·s0·2^k`` slots).  Mirrors the constructor exactly."""
    n_cells = max(1, n_cells)
    s0 = max(4, int(math.log2(max(2, n_cells))) + 1)
    L = 0
    while s0 * (1 << L) < n_cells:
        L += 1
    return s0, L


def _bsort_pair(K: float, m: int) -> float:
    """Measured cost of ``oblivious_block_sort`` moving a meta+payload
    array *pair* of ``K`` blocks at cache size ``m``: per-block cost fits
    ``35 + 3.6·log2²(K/(m-2))`` for a single array (measured across
    K=16..1024, m=8..512); the paired sort moves both arrays through
    every merge-split level, costing ~1.9× that."""
    depth = math.log2(max(1.0, K / max(2.0, m - 2.0)))
    return 1.9 * K * (35.0 + 3.6 * depth * depth)


def _hier_access_ios(n_cells: int, m: int) -> float:
    """Amortized I/Os per hierarchical-ORAM access: the fixed probe
    schedule (buffer scan + one fixed-length binary search per level +
    shelter append) plus the amortized merge cost.  A merge into level
    ``j < L`` sorts ~``caps_j`` blocks twice (dedup key, then new-epoch
    tags) and happens every ``s0·2^(j+1)`` accesses; the full merge into
    ``L`` sorts ~``2·caps_L`` blocks every ``s0·2^L`` accesses.  The
    linear scans (copy-in/dedup/retag/copy-back) add ~12 I/Os per merged
    block.  Overestimates measurement by ~1.2–1.3× at the reference
    shapes (n=128 cells, m=16: est 2801 vs 2290; n=256, m=32: 3128 vs
    2386) — within the documented ×4 envelope."""
    s0, L = _hier_shape(n_cells)
    caps = [2 * s0 * (1 << k) for k in range(L + 1)]
    probes = 2.0 * s0 + 2.0
    for cap in caps:
        probes += math.floor(math.log2(cap)) + 3.0
    merges = 0.0
    for j in range(L):
        merges += (2.0 * _bsort_pair(caps[j], m) + 12.0 * caps[j]) / (
            s0 * (1 << (j + 1))
        )
    merges += (2.0 * _bsort_pair(2 * caps[L], m) + 20.0 * caps[L]) / (
        s0 * (1 << L)
    )
    return probes + merges


def _hier_build_ios(n_cells: int, m: int) -> float:
    """One-time hierarchical-ORAM build: populate level ``L`` (read the
    n source cells, write ``caps_L`` tagged slots twice) plus one paired
    oblivious sort of the level.  Est 48.7k vs measured 39.8k at
    (n=128 cells, m=16); 111k vs 89.3k at (n=256, m=32)."""
    s0, L = _hier_shape(n_cells)
    cap_top = 2 * s0 * (1 << L)
    return 3.0 * n_cells + 2.0 * cap_top + _bsort_pair(cap_top, m)


def _rhs(n: int, params: Mapping) -> int:
    """Right-relation size in blocks for the arity-2 bounds (injected by
    the estimate plumbing as ``_rhs_blocks``; defaults to ``n``)."""
    return max(1, int(params.get("_rhs_blocks", n)))


def _union(n: int, params: Mapping) -> int:
    """Tagged-union size ``u = k·n + r`` the join sorts and scans."""
    return max(1, int(params.get("fanout", 1))) * n + _rhs(n, params)


#: Calibrated leading constants (implementation-measured; the paper gives
#: only asymptotics).  Measured per-block constants across the reference
#: shapes (M=64,B=4,n=512 … M=256,B=8,n=2048): compact 16–26, select and
#: quantiles 87–173, sort 330–980 (its recursion constant is large and
#: drifts with how many levels the shape needs — the paper's own
#: constant-factor caveat).  The chosen values sit near the geometric
#: means, keeping estimates within ~2× of measurements at those shapes;
#: ``tests/test_api_pipeline.py`` pins a documented ×4 envelope.
_C_COMPACT = 20.0
_C_SELECT = 120.0
_C_QUANTILES = 120.0
_C_SORT = 550.0
#: Sparse-IBLT compaction (Theorem 4): the linear insert pass costs
#: ``13·n`` exactly (one read plus k=3 read-modify-write pairs on two
#: tables per block, plus 6r-cell table zeroing); the dominating term is
#: the ORAM-simulated peel — ``Θ(r)`` RAM steps of square-root-ORAM ops
#: with periodic oblivious-shuffle rebuilds.  The original scalar peel
#: measured 82k–105k I/Os per ``r^1.5`` (231k/461k/1175k total at
#: (n=32,r=2)/(64,3)/(128,5)); the restructured peel — read-modify-write
#: cell accesses, plain fixed-schedule output arrays, a 2kr-bounded
#: queue seeded by one scan, and ``log2(n)+2``-stretched ORAM epochs
#: (see ``repro.core.compaction._peel_oram``) — measures 24.3k–25.8k at
#: the same shapes (80k/118k/304k total), a ≥3.3× cut.  That is what
#: moves the Theorem 4 crossover from *extreme* to *moderate* sparsity:
#: e.g. at n=2048 blocks, r=2 the old constant priced the peel at 281k
#: (butterfly: 154k — never chosen); now 97k, so the optimizer selects
#: it (pinned in tests/test_oram_pipeline.py).
_C_SPARSE_PEEL = 25000.0
#: Theorem 4 peel with hierarchical ORAMs instead of square-root ones.
#: The peel's three stores hold only ~6r cells each — far below the
#: hierarchical scheme's crossover (~64 cells, see ``oram_read_batch``
#: measurements) — so its polylog amortization never pays for its larger
#: constants here: measured 41.6k–52.8k I/Os per ``r^1.5`` at the same
#: (n=32,r=2)/(64,3)/(128,5) shapes (134k/216k/590k total), ~2× the
#: square-root peel.  Priced honestly so the optimizer keeps selecting
#: ``compact_sparse``; the variant exists for completeness and for the
#: obliviousness harness to cover.
_C_HIER_PEEL = 55000.0
#: Loose compaction (Theorem 8): c0=3 thinning passes (4·n each) per
#: halving level with geometrically shrinking levels, plus the final
#: in-cache stage.  Measured 27–45 I/Os per block at wide-block-feasible
#: shapes (M=256..512, n=64..256 blocks).
_C_LOOSE = 40.0
#: log* compaction (Theorem 9, oblivious_list=True): the c0=8 thinning
#: burst plus tower phases cost ~35·n·log*(n); the Theorem 4 tail into
#: the last 0.25·r cells pays the ORAM peel on ``ceil(r/4)`` blocks.
_C_LOGSTAR = 35.0

PAPER_BOUNDS: dict[str, IOBound] = {
    "shuffle": IOBound(
        name="shuffle",
        source="Knuth block shuffle (§5)",
        formula="4·n",
        # Exact: each of the n swaps reads and rewrites both partners.
        estimate=lambda n, m, params: 4.0 * n,
    ),
    "scan": IOBound(
        name="scan",
        source="one full read+write pass",
        formula="2·n",
        # Exact: every block is read once and written once, however many
        # fused kernels the pass applies.
        estimate=lambda n, m, params: 2.0 * n,
    ),
    "ranked_scan": IOBound(
        name="ranked_scan",
        source="fixed-pattern ranked scan (Theorems 13/17, sorted case)",
        formula="n",
        # Exact: one read of every block, no writes.
        estimate=lambda n, m, params: 1.0 * n,
    ),
    "compact": IOBound(
        name="compact",
        source="Lemma 3 + Theorem 6",
        formula="c·n·(1 + log_m n)",
        # One consolidation scan plus the deterministic butterfly
        # compaction (m-ary routing: log_m n passes of O(n) I/Os each).
        estimate=lambda n, m, params: _C_COMPACT * n * (1.0 + _logm(n, m)),
    ),
    "compact_sparse": IOBound(
        name="compact_sparse",
        source="Theorem 4 (IBLT + ORAM peel)",
        formula="13·n + c·r^1.5",
        # Linear insert pass over all n blocks, then the ORAM-simulated
        # peel over a 6r-cell table: Θ(r) steps × O(sqrt(r)) per
        # square-root-ORAM op (probe + amortized rebuild).
        estimate=lambda n, m, params: (
            13.0 * n + _C_SPARSE_PEEL * max(1, _r_blocks(n, params)) ** 1.5
        ),
        # Theorem 4's sparse regime: the ``r^1.5`` peel term must stay
        # within the linear insert pass's order (r <= n^(2/3)), else the
        # "linear-time for sparse arrays" hypothesis is void and the
        # estimate would price a regime the bound does not cover.
        feasible=lambda n, m, params: (
            max(1, _r_blocks(n, params)) ** 1.5 <= n
        ),
    ),
    "compact_loose": IOBound(
        name="compact_loose",
        source="Theorem 8 (thinning + region halving)",
        formula="c·n",
        estimate=lambda n, m, params: _C_LOOSE * n,
        # Density bound R <= N/4 plus the wide-block/tall-cache regime
        # (checked at n+1 blocks: consolidation can add a partial block).
        feasible=lambda n, m, params: (
            4 * _r_blocks(n, params) <= n and wide_block_ok(n + 1, m)
        ),
    ),
    "compact_logstar": IOBound(
        name="compact_logstar",
        source="Theorem 9 / Appendix B (tower-of-twos phases)",
        formula="c·n·log*(n) + peel(r/4) (+ Theorem 4 base case)",
        # Mirrors the runner's branch structure: tiny arrays fall through
        # to the butterfly; genuinely sparse ones to Theorem 4 (ORAM peel
        # on r blocks); the rest pay the thinning burst and phases plus
        # the oblivious Theorem 4 tail on the last 0.25·r cells.
        estimate=lambda n, m, params: (
            _C_COMPACT * n * (1.0 + _logm(n, m))
            if n < 32
            else (
                13.0 * n
                + _C_SPARSE_PEEL * max(1, _r_blocks(n, params)) ** 1.5
                if _r_blocks(n, params) < n / max(1.0, _log2(n)) ** 2
                else (
                    _C_LOGSTAR * n * _log_star(n)
                    + _C_SPARSE_PEEL
                    * max(1, -(-_r_blocks(n, params) // 4)) ** 1.5
                )
            )
        ),
        feasible=lambda n, m, params: 4 * _r_blocks(n, params) <= n,
    ),
    "join": IOBound(
        name="join",
        source="sort-merge equi-join over a tagged union (Theorem 21 ×2)",
        formula="c·(r·log_m r + u·log_m u) + O(u), u = k·n + r",
        # Sort the right relation (r blocks), tag it in one scan (2·r),
        # expand the left k-fold into the union (reads n, writes k·n),
        # sort the union of u = k·n + r blocks, then one match scan that
        # reads u and writes the padded output (≤ u blocks).  Both sorts
        # pay the Theorem 21 constant; the scans are exact.
        estimate=lambda n, m, params: (
            _C_SORT
            * (
                _rhs(n, params) * _logm(_rhs(n, params), m)
                + _union(n, params) * _logm(_union(n, params), m)
            )
            + 2.0 * _rhs(n, params)
            + (1.0 + int(params.get("fanout", 1))) * n
            + 4.0 * _union(n, params)
        ),
    ),
    "group_by": IOBound(
        name="group_by",
        source="Theorem 21 sort + two fixed-schedule scans",
        formula="c·n·log_m n + 4·n",
        # One oblivious sort groups equal keys into runs; a forward scan
        # (read+write) carries the running aggregate across chunk
        # boundaries, and a backward scan (read+write) keeps only each
        # run's last row.  Output stays padded at the public n blocks.
        estimate=lambda n, m, params: _C_SORT * n * _logm(n, m) + 4.0 * n,
    ),
    "group_by_scan": IOBound(
        name="group_by_scan",
        source="two fixed-schedule scans (sorted input)",
        formula="4·n",
        # Exact: the forward aggregate pass and the backward last-of-run
        # pass each read and write every block once.
        estimate=lambda n, m, params: 4.0 * n,
    ),
    "oram_read_batch": IOBound(
        name="oram_read_batch",
        source="square-root ORAM simulation (§1; Goldreich–Ostrovsky)",
        formula="c·n·log2²(n)·(1 + k/√n)",
        # Building the ORAM is one oblivious block sort of the store
        # (c·n·log² n); each of the k requests pays a shelter scan plus a
        # probe, with the epoch rebuild amortizing to ~√n·log² n.
        # Measured within ×2 at (n=256..4096 cells, k=8..64) for c = 3.
        estimate=lambda n, m, params: (
            3.0
            * n
            * _log2(n) ** 2
            * (1.0 + len(params.get("indices", ())) / math.sqrt(max(1, n)))
        ),
        # The probe sequence is data-dependent and inherently serial;
        # only the build sort and epoch rebuilds fan out.
        parallel_fraction=0.5,
    ),
    "oram_read_batch_hier": IOBound(
        name="oram_read_batch_hier",
        source="hierarchical ORAM simulation (§1; Goldreich–Ostrovsky log²)",
        formula="build(n) + k·(probes(n) + amortized merge(n))",
        # Bigger build (sorts the 2n..4n-slot top level instead of n+√n
        # shelter slots) but polylog amortized accesses, so the backend
        # choice genuinely depends on the request count k: at n=128
        # blocks, m=16 the square-root backend measures 20.1k build +
        # 3.7k/access vs 39.8k + 2.3k here — the hierarchical variant
        # wins once k is large enough to amortize the build.
        estimate=lambda n, m, params: (
            _hier_build_ios(n, m)
            + len(params.get("indices", ())) * _hier_access_ios(n, m)
        ),
        # Same serial probe caveat as the square-root backend.
        parallel_fraction=0.5,
    ),
    "compact_sparse_hier": IOBound(
        name="compact_sparse_hier",
        source="Theorem 4 (IBLT + ORAM peel, hierarchical backend)",
        formula="13·n + c·r^1.5",
        estimate=lambda n, m, params: (
            13.0 * n + _C_HIER_PEEL * max(1, _r_blocks(n, params)) ** 1.5
        ),
        # Same sparse-regime hypothesis as compact_sparse.
        feasible=lambda n, m, params: (
            max(1, _r_blocks(n, params)) ** 1.5 <= n
        ),
    ),
    "select": IOBound(
        name="select",
        source="Theorem 13",
        formula="c·n",
        # Linear: O(1) scans plus compaction of an O(N/sqrt(N))-size
        # candidate band.
        estimate=lambda n, m, params: _C_SELECT * n,
    ),
    "quantiles": IOBound(
        name="quantiles",
        source="Theorem 17",
        formula="c·n",
        # Linear for q <= m^(1/4); the per-quantile refinement touches
        # only sub-linear candidate bands.
        estimate=lambda n, m, params: _C_QUANTILES * n,
    ),
    "sort": IOBound(
        name="sort",
        source="Theorem 21",
        formula="c·n·log_m n",
        # The optimal oblivious sort: per recursion level, quantiles +
        # consolidation + shuffle-and-deal + loose compaction are all
        # O(n); there are O(log_m n) levels.  The constant is large —
        # the paper's own constant-factor caveat.
        estimate=lambda n, m, params: _C_SORT * n * _logm(n, m),
    ),
    "stream_source": IOBound(
        name="stream_source",
        source="chunked upload (service layer; §1 client↔server model)",
        formula="0 block I/Os (c round trips of n/c records each)",
        # Uploads are setup affordances outside the block-I/O model —
        # identical for one-shot and chunked arrival.  What changes is
        # the *round-trip* count (c instead of 1) and the peak client
        # residency (one chunk instead of n records), which
        # :func:`stream_upload_cost` prices separately.
        estimate=lambda n, m, params: 0.0,
        # Round trips, not block I/Os: nothing for the engine to fan out.
        parallel_fraction=0.0,
    ),
    "merge_sort": IOBound(
        name="merge_sort",
        source="Aggarwal–Vitter (baseline, not oblivious)",
        formula="2·n·(1 + log_m n)",
        estimate=lambda n, m, params: 2.0 * n * (1.0 + _logm(n, m)),
        # The k-way merge consumes runs in data-dependent order; only
        # run formation fans out.
        parallel_fraction=0.5,
    ),
    "bitonic_sort": IOBound(
        name="bitonic_sort",
        source="Lemma 2 substrate",
        formula="c·n·log2²(n)",
        estimate=lambda n, m, params: 0.5 * n * _log2(n) ** 2,
    ),
}


def estimate_ios(
    cost_model: str, n_blocks: int, m: int, params: Mapping | None = None
) -> float:
    """Estimated block I/Os for ``cost_model`` on ``n_blocks`` input blocks.

    Raises ``KeyError`` for an unknown model — callers that tolerate
    unmodelled algorithms should check :data:`PAPER_BOUNDS` membership.
    """
    bound = PAPER_BOUNDS[cost_model]
    return float(bound.estimate(max(1, n_blocks), max(2, m), params or {}))


def span_scale(cost_model: str, workers: int) -> float:
    """Brent-style span/work ratio of ``cost_model`` at ``workers``.

    With parallelizable fraction ``p`` (the bound's
    :attr:`IOBound.parallel_fraction`), the span of ``W`` work units is
    ``W·((1-p) + p/workers)`` — Amdahl's law with rounds as barriers.
    This term is ADVISORY pricing for ``plan.explain()`` only: the
    optimizer's plan *choice* must stay worker-independent (it compares
    work, never span), otherwise machines with different worker counts
    would pick different plans and their traces would diverge — breaking
    the byte-identical adversary-view contract the parallel engine keeps.
    """
    workers = max(1, int(workers))
    p = PAPER_BOUNDS[cost_model].parallel_fraction
    return (1.0 - p) + p / workers


def estimate_span_ios(
    cost_model: str,
    n_blocks: int,
    m: int,
    params: Mapping | None = None,
    workers: int = 1,
) -> float:
    """Estimated *span* (critical-path block I/Os) of ``cost_model`` at
    ``workers`` — :func:`estimate_ios` scaled by :func:`span_scale`."""
    return estimate_ios(cost_model, n_blocks, m, params) * span_scale(
        cost_model, workers
    )


def stream_upload_cost(
    num_chunks: int, chunk_records: int
) -> dict[str, int]:
    """Cost model of a chunked source's client↔server data movement.

    A streamed upload trades round trips for client residency: the
    one-shot plan pays one trip holding all ``num_chunks·chunk_records``
    records client-side, the streamed plan pays ``num_chunks`` trips
    holding at most ``chunk_records``.  Block I/Os are zero either way
    (uploads are setup affordances, as in :data:`PAPER_BOUNDS`'s
    ``stream_source`` entry); the adversary-visible total is identical.
    """
    if num_chunks < 1 or chunk_records < 1:
        raise ValueError(
            f"need num_chunks >= 1 and chunk_records >= 1, got "
            f"({num_chunks}, {chunk_records})"
        )
    return {
        "round_trips": num_chunks,
        "peak_client_records": chunk_records,
        "public_total_records": num_chunks * chunk_records,
        "block_ios": 0,
    }
