"""Analytical I/O estimates from the paper's bounds, for ``plan.explain()``.

Each entry maps a registered algorithm's ``cost_model`` to the paper
bound that governs it and to a closed-form block-I/O estimate.  The
paper states the bounds asymptotically; the leading constants here are
calibrated against the implementation (measured at the reference shapes
``(M=64, B=4)`` and ``(M=256, B=8)``, see ``tests/test_api_pipeline.py``)
so that ``explain()`` predicts measured I/Os within a small constant
factor — close enough to compare plans and spot the expensive step
*before* paying for an execution.

All estimates are functions of the input size in blocks ``n = ceil(N/B)``
and the cache size in blocks ``m = M/B``; the ``params`` dict carries the
step's call parameters (``q``, ``k``, …) for bounds that depend on them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.util.mathx import log_base

__all__ = ["IOBound", "PAPER_BOUNDS", "estimate_ios"]


@dataclass(frozen=True)
class IOBound:
    """One paper bound: provenance, human-readable formula, estimator."""

    name: str
    source: str  #: where the bound comes from (theorem / lemma)
    formula: str  #: human-readable growth law, in blocks n and cache m
    estimate: Callable[[int, int, Mapping], float]  #: (n_blocks, m, params)


def _logm(n: int, m: int) -> float:
    """``max(1, log_m n)`` — the recursion depth factor."""
    return max(1.0, log_base(max(2, n), max(2, m)))


def _log2(n: int) -> float:
    return max(1.0, math.log2(max(2, n)))


#: Calibrated leading constants (implementation-measured; the paper gives
#: only asymptotics).  Measured per-block constants across the reference
#: shapes (M=64,B=4,n=512 … M=256,B=8,n=2048): compact 16–26, select and
#: quantiles 87–173, sort 330–980 (its recursion constant is large and
#: drifts with how many levels the shape needs — the paper's own
#: constant-factor caveat).  The chosen values sit near the geometric
#: means, keeping estimates within ~2× of measurements at those shapes;
#: ``tests/test_api_pipeline.py`` pins a documented ×4 envelope.
_C_COMPACT = 20.0
_C_SELECT = 120.0
_C_QUANTILES = 120.0
_C_SORT = 550.0

PAPER_BOUNDS: dict[str, IOBound] = {
    "shuffle": IOBound(
        name="shuffle",
        source="Knuth block shuffle (§5)",
        formula="4·n",
        # Exact: each of the n swaps reads and rewrites both partners.
        estimate=lambda n, m, params: 4.0 * n,
    ),
    "compact": IOBound(
        name="compact",
        source="Lemma 3 + Theorem 6",
        formula="c·n·(1 + log_m n)",
        # One consolidation scan plus the deterministic butterfly
        # compaction (m-ary routing: log_m n passes of O(n) I/Os each).
        estimate=lambda n, m, params: _C_COMPACT * n * (1.0 + _logm(n, m)),
    ),
    "select": IOBound(
        name="select",
        source="Theorem 13",
        formula="c·n",
        # Linear: O(1) scans plus compaction of an O(N/sqrt(N))-size
        # candidate band.
        estimate=lambda n, m, params: _C_SELECT * n,
    ),
    "quantiles": IOBound(
        name="quantiles",
        source="Theorem 17",
        formula="c·n",
        # Linear for q <= m^(1/4); the per-quantile refinement touches
        # only sub-linear candidate bands.
        estimate=lambda n, m, params: _C_QUANTILES * n,
    ),
    "sort": IOBound(
        name="sort",
        source="Theorem 21",
        formula="c·n·log_m n",
        # The optimal oblivious sort: per recursion level, quantiles +
        # consolidation + shuffle-and-deal + loose compaction are all
        # O(n); there are O(log_m n) levels.  The constant is large —
        # the paper's own constant-factor caveat.
        estimate=lambda n, m, params: _C_SORT * n * _logm(n, m),
    ),
    "merge_sort": IOBound(
        name="merge_sort",
        source="Aggarwal–Vitter (baseline, not oblivious)",
        formula="2·n·(1 + log_m n)",
        estimate=lambda n, m, params: 2.0 * n * (1.0 + _logm(n, m)),
    ),
    "bitonic_sort": IOBound(
        name="bitonic_sort",
        source="Lemma 2 substrate",
        formula="c·n·log2²(n)",
        estimate=lambda n, m, params: 0.5 * n * _log2(n) ** 2,
    ),
}


def estimate_ios(
    cost_model: str, n_blocks: int, m: int, params: Mapping | None = None
) -> float:
    """Estimated block I/Os for ``cost_model`` on ``n_blocks`` input blocks.

    Raises ``KeyError`` for an unknown model — callers that tolerate
    unmodelled algorithms should check :data:`PAPER_BOUNDS` membership.
    """
    bound = PAPER_BOUNDS[cost_model]
    return float(bound.estimate(max(1, n_blocks), max(2, m), params or {}))
