"""Complexity-curve analysis helpers for the experiment harness."""

from repro.analysis.bounds import IOBound, PAPER_BOUNDS, estimate_ios
from repro.analysis.fitting import ComplexityFit, fit_complexity, io_models

__all__ = [
    "ComplexityFit",
    "fit_complexity",
    "io_models",
    "IOBound",
    "PAPER_BOUNDS",
    "estimate_ios",
]
