"""repro — data-oblivious external-memory algorithms for outsourced data.

A production-quality reproduction of Goodrich, *"Data-Oblivious
External-Memory Algorithms for the Compaction, Selection, and Sorting of
Outsourced Data"* (SPAA 2011, arXiv:1103.5102).

Quickstart::

    import numpy as np
    from repro.api import ObliviousSession

    with ObliviousSession(M=64, B=4, seed=0) as session:
        result = session.sort(np.random.permutation(1000))
        print(result.records[:5])              # sorted records
        print(result.cost.total)               # the model's cost measure
        print(result.cost.trace_fingerprint)   # what the adversary saw
        print(result.cost.attempts)            # Las Vegas attempts used

The session facade owns the external-memory machine, derives all
randomness from one seed, retries the paper's Las Vegas failures within
a bounded budget, and supports pluggable storage backends
(``backend="memmap"`` for out-of-core runs).  The machine-level API
shown below remains available for algorithm-level work::

    from repro import EMMachine, make_records, oblivious_sort, make_rng

    machine = EMMachine(M=64, B=4)          # Alice's cache, Bob's block size
    data = machine.alloc_cells(1000)
    data.load_flat(make_records(np.random.permutation(1000)))
    out = oblivious_sort(machine, data, 1000, make_rng(0))

Subpackages
-----------
``repro.api``
    The :class:`~repro.api.ObliviousSession` facade: algorithm registry,
    storage backends, retry policies, unified cost reports.
``repro.em``
    The external-memory model substrate: simulated block device, client
    cache, I/O counters, access traces, adversary view.
``repro.core``
    The paper's algorithms: consolidation (Lemma 3), the four compaction
    algorithms (Theorems 4/6/8/9), selection (Theorems 12/13), quantiles
    (Theorem 17), shuffle-and-deal, failure sweeping, and the oblivious
    sort (Theorem 21).
``repro.networks``
    Comparator networks (bitonic, odd-even), randomized Shellsort, and
    the butterfly compaction network of Figure 1.
``repro.iblt``
    Invertible Bloom lookup tables (§2).
``repro.oram``
    Square-root ORAM and the RAM-simulation substrate for Theorem 4.
``repro.oblivious``
    Obliviousness verification (trace equality and distribution tests).
``repro.baselines``
    Non-oblivious external merge sort and oblivious strawmen.
``repro.util``
    Math helpers, RNG plumbing, the Chernoff toolkit (Appendix A).
"""

from repro.baselines import bitonic_external_sort, external_merge_sort, sort_then_pick
from repro.core import (
    CompactionFailure,
    QuantileFailure,
    SelectionFailure,
    SortFailure,
    consolidate,
    loose_compact,
    loose_compact_logstar,
    multiway_consolidate,
    oblivious_block_sort,
    oblivious_external_sort,
    oblivious_sort,
    quantiles_em,
    select_em,
    tight_compact,
    tight_compact_sparse,
)
from repro.em import (
    NULL_KEY,
    AccessTrace,
    AdversaryView,
    EMArray,
    EMMachine,
    make_block,
    make_records,
)
from repro.analysis import fit_complexity
from repro.api import CostReport, EMConfig, ObliviousSession, Result, RetryPolicy
from repro.errors import LasVegasFailure, ReproError, RetryExhausted
from repro.iblt import IBLT
from repro.networks import butterfly_compact, butterfly_expand
from repro.oblivious import adversarial_inputs, check_oblivious
from repro.oram import LinearScanORAM, SquareRootORAM
from repro.util.rng import make_rng

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # facade
    "ObliviousSession",
    "EMConfig",
    "RetryPolicy",
    "Result",
    "CostReport",
    # errors
    "ReproError",
    "LasVegasFailure",
    "RetryExhausted",
    # model
    "EMMachine",
    "EMArray",
    "AccessTrace",
    "AdversaryView",
    "NULL_KEY",
    "make_block",
    "make_records",
    "make_rng",
    # core algorithms
    "consolidate",
    "multiway_consolidate",
    "tight_compact",
    "tight_compact_sparse",
    "loose_compact",
    "loose_compact_logstar",
    "select_em",
    "quantiles_em",
    "oblivious_sort",
    "oblivious_external_sort",
    "oblivious_block_sort",
    # failures
    "CompactionFailure",
    "SelectionFailure",
    "QuantileFailure",
    "SortFailure",
    # substrates
    "IBLT",
    "SquareRootORAM",
    "LinearScanORAM",
    "butterfly_compact",
    "butterfly_expand",
    "fit_complexity",
    # verification
    "check_oblivious",
    "adversarial_inputs",
    # baselines
    "external_merge_sort",
    "bitonic_external_sort",
    "sort_then_pick",
]
