"""Cross-seed statistical obliviousness checks.

The exact same-seed check in :mod:`repro.oblivious.verifier` is the primary
tool.  This module adds a distributional sanity check: across many seeds,
the *distribution* of trace lengths (the only scalar allowed to vary, and
only with the randomness, never the data) must match between two inputs.
A Kolmogorov–Smirnov two-sample test flags mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.oblivious.verifier import AlgorithmRunner, run_traced

__all__ = ["DistributionTestResult", "trace_length_distribution_test"]


@dataclass(frozen=True)
class DistributionTestResult:
    """Two-sample KS test outcome on trace-length distributions."""

    statistic: float
    pvalue: float
    lengths_a: tuple[int, ...]
    lengths_b: tuple[int, ...]

    def consistent(self, alpha: float = 0.01) -> bool:
        """True when the test does *not* reject equality at level ``alpha``.

        Identical distributions (the common case for our algorithms, whose
        trace length is seed-deterministic) give p-value 1.0.
        """
        return self.pvalue > alpha


def trace_length_distribution_test(
    runner: AlgorithmRunner,
    records_a: np.ndarray,
    records_b: np.ndarray,
    *,
    M: int,
    B: int,
    seeds: Sequence[int],
) -> DistributionTestResult:
    """Compare trace-length distributions for two inputs across seeds."""
    if len(records_a) != len(records_b):
        raise ValueError("inputs must have equal size")
    lengths_a = []
    lengths_b = []
    for seed in seeds:
        _, view_a = run_traced(runner, records_a, M=M, B=B, seed=seed)
        _, view_b = run_traced(runner, records_b, M=M, B=B, seed=seed)
        lengths_a.append(view_a.num_events)
        lengths_b.append(view_b.num_events)
    if lengths_a == lengths_b:
        # Degenerate-but-ideal case: identical samples.  scipy's KS test is
        # well-defined here, but short-circuiting keeps p-value exactly 1.
        return DistributionTestResult(0.0, 1.0, tuple(lengths_a), tuple(lengths_b))
    ks = stats.ks_2samp(lengths_a, lengths_b)
    return DistributionTestResult(
        float(ks.statistic), float(ks.pvalue), tuple(lengths_a), tuple(lengths_b)
    )
