"""Obliviousness verification tools (paper §1's definition, experiment E10)."""

from repro.oblivious.verifier import (
    ObliviousnessReport,
    ObliviousnessViolation,
    adversarial_inputs,
    check_oblivious,
    run_traced,
)
from repro.oblivious.statistics import trace_length_distribution_test

__all__ = [
    "ObliviousnessReport",
    "ObliviousnessViolation",
    "adversarial_inputs",
    "check_oblivious",
    "run_traced",
    "trace_length_distribution_test",
]
