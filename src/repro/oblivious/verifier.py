"""Trace-based obliviousness verification.

The paper (§1) defines a sequence of I/Os as data-oblivious when its
distribution depends only on the problem ``P`` and the parameters
``N, M, B`` — never on the data values.  Our algorithms draw all of their
randomness from an explicit seed, which turns the distributional statement
into an executable one:

    With the seed held fixed, the adversary's complete view must be
    *identical* for any two inputs of the same size.

:func:`check_oblivious` runs an algorithm over a family of adversarially
chosen inputs with the same seed and compares adversary views.  This is a
strictly stronger check than comparing distributions, and it is exact.
Cross-seed distribution tests live in :mod:`repro.oblivious.statistics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.em.adversary import AdversaryView
from repro.em.machine import EMMachine
from repro.util.rng import make_rng

__all__ = [
    "ObliviousnessViolation",
    "ObliviousnessReport",
    "run_traced",
    "check_oblivious",
    "adversarial_inputs",
]

#: An algorithm under verification: receives a fresh machine, the input
#: records, and a seeded generator; returns anything.
AlgorithmRunner = Callable[[EMMachine, np.ndarray, np.random.Generator], Any]


class ObliviousnessViolation(AssertionError):
    """Raised when two same-seed runs produced distinguishable views."""


@dataclass
class ObliviousnessReport:
    """Outcome of an obliviousness check over a family of inputs."""

    views: list[AdversaryView] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)

    @property
    def oblivious(self) -> bool:
        """True iff all runs were indistinguishable."""
        return len({v.trace_fingerprint for v in self.views}) <= 1

    def describe(self) -> str:
        lines = ["obliviousness report:"]
        for label, view in zip(self.labels, self.views):
            lines.append(
                f"  {label:>16}: trace={view.trace_fingerprint[:16]}… "
                f"events={view.num_events} reads={view.num_reads} "
                f"writes={view.num_writes}"
            )
        lines.append(f"  verdict: {'OBLIVIOUS' if self.oblivious else 'LEAKY'}")
        return "\n".join(lines)


def run_traced(
    runner: AlgorithmRunner,
    records: np.ndarray,
    *,
    M: int,
    B: int,
    seed: int,
) -> tuple[Any, AdversaryView]:
    """Run ``runner`` on a fresh machine and capture the adversary's view."""
    machine = EMMachine(M, B)
    rng = make_rng(seed)
    result = runner(machine, records, rng)
    return result, AdversaryView.observe(machine)


def check_oblivious(
    runner: AlgorithmRunner,
    inputs: Sequence[np.ndarray],
    *,
    M: int,
    B: int,
    seed: int = 0xD0B1,
    labels: Sequence[str] | None = None,
    raise_on_leak: bool = True,
) -> ObliviousnessReport:
    """Verify that ``runner`` is data-oblivious over ``inputs``.

    All inputs must have the same length (the definition only quantifies
    over memory configurations of equal size).  Each input is run on a
    fresh machine with the *same* seed; the adversary views must coincide.
    """
    sizes = {len(x) for x in inputs}
    if len(sizes) > 1:
        raise ValueError(
            f"obliviousness is defined over equal-size inputs; got sizes {sizes}"
        )
    if labels is None:
        labels = [f"input{i}" for i in range(len(inputs))]
    report = ObliviousnessReport()
    for label, records in zip(labels, inputs):
        _, view = run_traced(runner, records, M=M, B=B, seed=seed)
        report.views.append(view)
        report.labels.append(label)
    if raise_on_leak and not report.oblivious:
        raise ObliviousnessViolation(report.describe())
    return report


def adversarial_inputs(
    n: int,
    *,
    rng: np.random.Generator | None = None,
    key_range: int = 2**40,
) -> dict[str, np.ndarray]:
    """Build the standard family of adversarial inputs of size ``n``.

    The family covers the cases the paper calls out as dangerous for
    non-oblivious algorithms: all-equal keys (the n-way hash collision
    example of §1), already-sorted, reverse-sorted, and uniformly random
    keys.  Values are distinct so outputs remain checkable.
    """
    rng = rng or np.random.default_rng(0)
    idx = np.arange(1, n + 1, dtype=np.int64)
    random_keys = rng.integers(1, key_range, size=n, dtype=np.int64)
    families = {
        "all_equal": np.column_stack([np.full(n, 7, dtype=np.int64), idx]),
        "sorted": np.column_stack([idx, idx]),
        "reversed": np.column_stack([idx[::-1].copy(), idx]),
        "random": np.column_stack([random_keys, idx]),
    }
    return families
